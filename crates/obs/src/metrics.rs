//! Monotonic counters and per-site latency histograms.
//!
//! [`MetricsRegistry`] is the aggregate half of the observability layer:
//! counters keyed by static names and bounded latency histograms per
//! instrumentation site. The percentile machinery ([`percentile`],
//! [`LatencySummary`]) lives here so both the campaign reports in
//! `easis-injection` and the live metrics share one implementation — the
//! campaign crate re-exports these types unchanged, keeping its JSON
//! report shape byte-identical.

use easis_sim::time::Duration;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Samples retained per histogram site; later samples still update the
/// count/min/max but are not kept for percentiles.
pub const MAX_SAMPLES_PER_SITE: usize = 4096;

/// Percentile (0.0–1.0) of a sorted duration list, nearest-rank on the
/// `(len - 1) * p` index. `None` on an empty list.
pub fn percentile(sorted: &[Duration], p: f64) -> Option<Duration> {
    if sorted.is_empty() {
        return None;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p.clamp(0.0, 1.0)).round() as usize;
    Some(sorted[idx])
}

/// Latency distribution summary, in microseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LatencySummary {
    /// Number of samples the percentiles are computed over.
    pub samples: usize,
    /// Minimum latency.
    pub min_us: u64,
    /// Median (p50) latency.
    pub p50_us: u64,
    /// 95th-percentile latency.
    pub p95_us: u64,
    /// 99th-percentile latency.
    pub p99_us: u64,
    /// Maximum latency.
    pub max_us: u64,
}

impl LatencySummary {
    /// Summarises a latency list sorted ascending; `None` when empty.
    pub fn from_sorted(sorted: &[Duration]) -> Option<LatencySummary> {
        let pct = |p| percentile(sorted, p).map(|d| d.as_micros());
        Some(LatencySummary {
            samples: sorted.len(),
            min_us: sorted.first()?.as_micros(),
            p50_us: pct(0.50)?,
            p95_us: pct(0.95)?,
            p99_us: pct(0.99)?,
            max_us: sorted.last()?.as_micros(),
        })
    }
}

/// Bounded latency histogram of one instrumentation site.
#[derive(Debug, Clone, Default)]
pub struct LatencyHistogram {
    samples: Vec<Duration>,
    count: u64,
    dropped: u64,
    min: Option<Duration>,
    max: Option<Duration>,
}

impl LatencyHistogram {
    /// Records one latency observation.
    pub fn observe(&mut self, latency: Duration) {
        self.count += 1;
        self.min = Some(self.min.map_or(latency, |m| m.min(latency)));
        self.max = Some(self.max.map_or(latency, |m| m.max(latency)));
        if self.samples.len() < MAX_SAMPLES_PER_SITE {
            self.samples.push(latency);
        } else {
            self.dropped += 1;
        }
    }

    /// Total observations (retained + dropped).
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Observations not retained for percentiles.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Percentile summary over the retained samples; `None` when empty.
    pub fn summary(&self) -> Option<LatencySummary> {
        let mut sorted = self.samples.clone();
        sorted.sort_unstable();
        LatencySummary::from_sorted(&sorted)
    }
}

/// A named counter value, as exported in a [`MetricsSnapshot`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CounterSnapshot {
    /// Counter name.
    pub name: String,
    /// Current value.
    pub value: u64,
}

/// A per-site latency summary, as exported in a [`MetricsSnapshot`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SiteSnapshot {
    /// Instrumentation site name.
    pub site: String,
    /// Total observations at this site.
    pub count: u64,
    /// Observations beyond the retained-sample bound.
    pub dropped: u64,
    /// Percentile summary; `None` when nothing was observed.
    pub latency: Option<LatencySummary>,
}

/// Serialisable snapshot of a whole registry, sorted by name.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// All counters, sorted by name.
    pub counters: Vec<CounterSnapshot>,
    /// All latency sites, sorted by name.
    pub sites: Vec<SiteSnapshot>,
}

impl MetricsSnapshot {
    /// Looks up a counter value (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|c| c.name == name)
            .map_or(0, |c| c.value)
    }

    /// Looks up a site snapshot.
    pub fn site(&self, name: &str) -> Option<&SiteSnapshot> {
        self.sites.iter().find(|s| s.site == name)
    }
}

/// Registry of monotonic counters and latency histograms.
///
/// Names are `&'static str` so incrementing an existing counter never
/// allocates; only the *first* observation of a new name inserts a map
/// entry.
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    counters: BTreeMap<&'static str, u64>,
    sites: BTreeMap<&'static str, LatencyHistogram>,
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// Adds `n` to the named counter.
    pub fn count(&mut self, name: &'static str, n: u64) {
        *self.counters.entry(name).or_insert(0) += n;
    }

    /// Current value of a counter (0 when never incremented).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Records a latency observation at a site.
    pub fn observe(&mut self, site: &'static str, latency: Duration) {
        self.sites.entry(site).or_default().observe(latency);
    }

    /// The histogram of a site, if any observation arrived.
    pub fn site(&self, site: &str) -> Option<&LatencyHistogram> {
        self.sites.get(site)
    }

    /// Exports everything as a serialisable snapshot.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self
                .counters
                .iter()
                .map(|(&name, &value)| CounterSnapshot {
                    name: name.to_string(),
                    value,
                })
                .collect(),
            sites: self
                .sites
                .iter()
                .map(|(&site, h)| SiteSnapshot {
                    site: site.to_string(),
                    count: h.count(),
                    dropped: h.dropped(),
                    latency: h.summary(),
                })
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(n: u64) -> Duration {
        Duration::from_millis(n)
    }

    #[test]
    fn percentile_matches_nearest_rank() {
        let sorted: Vec<Duration> = (1..=100).map(ms).collect();
        assert_eq!(percentile(&sorted, 0.0), Some(ms(1)));
        assert_eq!(percentile(&sorted, 0.5), Some(ms(51)));
        assert_eq!(percentile(&sorted, 1.0), Some(ms(100)));
        assert_eq!(percentile(&[], 0.5), None);
        // Out-of-range p clamps.
        assert_eq!(percentile(&sorted, -1.0), Some(ms(1)));
        assert_eq!(percentile(&sorted, 9.0), Some(ms(100)));
    }

    #[test]
    fn latency_summary_percentiles() {
        let sorted: Vec<Duration> = (1..=200).map(ms).collect();
        let s = LatencySummary::from_sorted(&sorted).unwrap();
        assert_eq!(s.samples, 200);
        assert_eq!(s.min_us, ms(1).as_micros());
        assert_eq!(s.p50_us, ms(101).as_micros());
        assert_eq!(s.p95_us, ms(190).as_micros());
        assert_eq!(s.p99_us, ms(198).as_micros());
        assert_eq!(s.max_us, ms(200).as_micros());
        assert_eq!(LatencySummary::from_sorted(&[]), None);
    }

    #[test]
    fn counters_accumulate_and_default_to_zero() {
        let mut m = MetricsRegistry::new();
        m.count("faults", 1);
        m.count("faults", 2);
        assert_eq!(m.counter("faults"), 3);
        assert_eq!(m.counter("unknown"), 0);
    }

    #[test]
    fn histogram_summary_and_snapshot() {
        let mut m = MetricsRegistry::new();
        for i in [5u64, 1, 9, 3] {
            m.observe("cycle", ms(i));
        }
        let snap = m.snapshot();
        let site = snap.site("cycle").unwrap();
        assert_eq!(site.count, 4);
        assert_eq!(site.dropped, 0);
        let lat = site.latency.unwrap();
        assert_eq!(lat.min_us, ms(1).as_micros());
        assert_eq!(lat.max_us, ms(9).as_micros());
        assert_eq!(snap.counter("nothing"), 0);
    }

    #[test]
    fn histogram_bounds_retained_samples() {
        let mut h = LatencyHistogram::default();
        for i in 0..(MAX_SAMPLES_PER_SITE as u64 + 10) {
            h.observe(Duration::from_micros(i));
        }
        assert_eq!(h.count(), MAX_SAMPLES_PER_SITE as u64 + 10);
        assert_eq!(h.dropped(), 10);
        let s = h.summary().unwrap();
        assert_eq!(s.samples, MAX_SAMPLES_PER_SITE);
    }

    #[test]
    fn snapshot_round_trips_through_json() {
        let mut m = MetricsRegistry::new();
        m.count("a", 7);
        m.observe("s", ms(3));
        let snap = m.snapshot();
        let json = serde_json::to_string_pretty(&snap).unwrap();
        let back: MetricsSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(snap, back);
    }
}

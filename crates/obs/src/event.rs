//! Structured observability events.
//!
//! [`ObsEvent`] is the closed vocabulary of things the watchdog stack can
//! report to the flight recorder: heartbeats arriving at the monitoring
//! unit, cycle-check boundaries, detected faults, error-vector increments,
//! task/application/ECU state transitions, Fault Management Framework
//! reactions and injection window edges. Every variant is `Copy` and holds
//! only plain ids and `&'static str` tags, so recording one never
//! allocates — the zero-allocation-on-hot-path property the recorder
//! promises.

use easis_osek::task::TaskId;
use easis_rte::mapping::ApplicationId;
use easis_rte::runnable::RunnableId;
use easis_sim::time::Instant;
use serde::{Deserialize, Serialize};

/// Fault classification mirrored from the watchdog's `FaultKind`.
///
/// The observability crate sits *below* `easis-watchdog` in the dependency
/// graph, so it carries its own copy of the three error classes; the
/// watchdog crate provides the `From<FaultKind>` conversion.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum FaultClass {
    /// Too few aliveness indications within a monitoring period.
    Aliveness,
    /// Too many aliveness indications within a monitoring period.
    ArrivalRate,
    /// The observed successor violated the program-flow table.
    ProgramFlow,
}

impl FaultClass {
    /// Stable machine-readable tag.
    pub fn tag(self) -> &'static str {
        match self {
            FaultClass::Aliveness => "aliveness",
            FaultClass::ArrivalRate => "arrival_rate",
            FaultClass::ProgramFlow => "program_flow",
        }
    }
}

/// The entity a state transition applies to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum StateScope {
    /// An OSEK task.
    Task(TaskId),
    /// An application (group of tasks).
    Application(ApplicationId),
    /// The global ECU state.
    Ecu,
}

/// One observability event, as recorded by the instrumented services.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ObsEvent {
    /// The heartbeat monitoring unit counted an aliveness indication.
    HeartbeatRecorded {
        /// The indicating runnable.
        runnable: RunnableId,
    },
    /// The active-probe unit received a challenge response.
    ProbeResponse {
        /// The responding runnable.
        runnable: RunnableId,
    },
    /// A periodic watchdog cycle check began.
    CycleCheckStart {
        /// Monotonic cycle number (1-based).
        cycle: u64,
    },
    /// A periodic watchdog cycle check finished.
    CycleCheckEnd {
        /// Monotonic cycle number (1-based).
        cycle: u64,
        /// Faults this cycle check detected.
        faults: u32,
    },
    /// A monitoring unit detected a fault.
    FaultDetected {
        /// The offending runnable.
        runnable: RunnableId,
        /// The error class.
        kind: FaultClass,
    },
    /// The task state indication unit incremented an error-vector element.
    ErrorVectorIncrement {
        /// The hosting task whose vector grew.
        task: TaskId,
        /// The runnable the error is attributed to.
        runnable: RunnableId,
        /// The error class of the element.
        kind: FaultClass,
        /// The element's count after the increment.
        count: u32,
    },
    /// A task, application or ECU health state changed.
    StateTransition {
        /// What changed state.
        scope: StateScope,
        /// `true` if the new state is faulty, `false` for a recovery.
        faulty: bool,
    },
    /// The Fault Management Framework queued a treatment.
    FmfReaction {
        /// Stable treatment tag (e.g. `restart_application`).
        treatment: &'static str,
    },
    /// An error injection was armed.
    InjectionActivated {
        /// Stable error-class tag (e.g. `heartbeat_loss`).
        class: &'static str,
    },
    /// An error injection was disarmed.
    InjectionDeactivated {
        /// Stable error-class tag.
        class: &'static str,
    },
}

impl ObsEvent {
    /// Stable per-variant tag; the metrics registry keeps one monotonic
    /// counter per tag, so every recorded event is also counted.
    pub fn tag(&self) -> &'static str {
        match self {
            ObsEvent::HeartbeatRecorded { .. } => "heartbeat_recorded",
            ObsEvent::ProbeResponse { .. } => "probe_response",
            ObsEvent::CycleCheckStart { .. } => "cycle_check_start",
            ObsEvent::CycleCheckEnd { .. } => "cycle_check_end",
            ObsEvent::FaultDetected { .. } => "fault_detected",
            ObsEvent::ErrorVectorIncrement { .. } => "error_vector_increment",
            ObsEvent::StateTransition { .. } => "state_transition",
            ObsEvent::FmfReaction { .. } => "fmf_reaction",
            ObsEvent::InjectionActivated { .. } => "injection_activated",
            ObsEvent::InjectionDeactivated { .. } => "injection_deactivated",
        }
    }
}

/// An [`ObsEvent`] with its sim-time stamp and a monotone sequence number.
///
/// The sequence number totals-orders events recorded at the same instant
/// (several units fire within one watchdog cycle check), so a dumped trace
/// replays in exactly the order the services emitted it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TimedEvent {
    /// Monotone sequence number, starting at 0.
    pub seq: u64,
    /// Simulated time the event was recorded at.
    pub at: Instant,
    /// The event.
    pub event: ObsEvent,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tags_are_unique() {
        let events = [
            ObsEvent::HeartbeatRecorded { runnable: RunnableId(0) },
            ObsEvent::ProbeResponse { runnable: RunnableId(0) },
            ObsEvent::CycleCheckStart { cycle: 1 },
            ObsEvent::CycleCheckEnd { cycle: 1, faults: 0 },
            ObsEvent::FaultDetected {
                runnable: RunnableId(0),
                kind: FaultClass::Aliveness,
            },
            ObsEvent::ErrorVectorIncrement {
                task: TaskId(0),
                runnable: RunnableId(0),
                kind: FaultClass::ProgramFlow,
                count: 1,
            },
            ObsEvent::StateTransition { scope: StateScope::Ecu, faulty: true },
            ObsEvent::FmfReaction { treatment: "restart_application" },
            ObsEvent::InjectionActivated { class: "heartbeat_loss" },
            ObsEvent::InjectionDeactivated { class: "heartbeat_loss" },
        ];
        let mut tags: Vec<_> = events.iter().map(ObsEvent::tag).collect();
        tags.sort_unstable();
        tags.dedup();
        assert_eq!(tags.len(), events.len());
    }

    #[test]
    fn timed_event_round_trips_through_json() {
        let te = TimedEvent {
            seq: 7,
            at: Instant::from_millis(420),
            event: ObsEvent::FaultDetected {
                runnable: RunnableId(4),
                kind: FaultClass::ProgramFlow,
            },
        };
        let json = serde_json::to_string(&te).unwrap();
        assert!(json.contains("FaultDetected"), "{json}");
        let back: TimedEvent = serde_json::from_str(&json).unwrap();
        assert_eq!(te, back);
    }

    #[test]
    fn fault_class_tags_match_the_watchdog_vocabulary() {
        assert_eq!(FaultClass::Aliveness.tag(), "aliveness");
        assert_eq!(FaultClass::ArrivalRate.tag(), "arrival_rate");
        assert_eq!(FaultClass::ProgramFlow.tag(), "program_flow");
    }
}

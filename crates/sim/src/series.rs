//! Time-series capture for figure regeneration.
//!
//! The paper's evaluation shows ControlDesk plots of counter values over time
//! (x axis in 10 ms ticks). [`SeriesSet`] collects named series of sampled
//! values and renders them the same way: one column per series, one row per
//! sample tick, plus a compact ASCII sparkline per series for quick visual
//! comparison against the paper's figures.

use crate::time::Instant;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// One sampled point.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Sample {
    /// Sample time.
    pub at: Instant,
    /// Sampled value.
    pub value: f64,
}

/// A single named time series.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Series {
    samples: Vec<Sample>,
}

impl Series {
    /// Creates an empty series.
    pub fn new() -> Self {
        Series::default()
    }

    /// Appends a sample. Samples must be pushed in non-decreasing time order.
    ///
    /// # Panics
    ///
    /// Panics if `at` is earlier than the last pushed sample.
    pub fn push(&mut self, at: Instant, value: f64) {
        if let Some(last) = self.samples.last() {
            assert!(at >= last.at, "samples must be pushed in time order");
        }
        self.samples.push(Sample { at, value });
    }

    /// All samples.
    pub fn samples(&self) -> &[Sample] {
        &self.samples
    }

    /// Values only, in time order.
    pub fn values(&self) -> impl Iterator<Item = f64> + '_ {
        self.samples.iter().map(|s| s.value)
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// `true` if no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Largest sampled value, or `None` when empty.
    pub fn max(&self) -> Option<f64> {
        self.values().fold(None, |acc, v| {
            Some(match acc {
                Some(m) if m >= v => m,
                _ => v,
            })
        })
    }

    /// Value of the last sample, or `None` when empty.
    pub fn last_value(&self) -> Option<f64> {
        self.samples.last().map(|s| s.value)
    }

    /// First time the series reaches at least `threshold`, or `None`.
    pub fn first_reached(&self, threshold: f64) -> Option<Instant> {
        self.samples
            .iter()
            .find(|s| s.value >= threshold)
            .map(|s| s.at)
    }

    /// Compact sparkline over the sample values (eight levels).
    pub fn sparkline(&self) -> String {
        const BARS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
        let max = self.max().unwrap_or(0.0);
        self.values()
            .map(|v| {
                if max <= 0.0 {
                    BARS[0]
                } else {
                    let idx = ((v / max) * 7.0).round().clamp(0.0, 7.0) as usize;
                    BARS[idx]
                }
            })
            .collect()
    }
}

/// A collection of named, jointly sampled series — one "figure".
///
/// # Examples
///
/// ```
/// use easis_sim::series::SeriesSet;
/// use easis_sim::time::Instant;
///
/// let mut fig = SeriesSet::new("fig5");
/// fig.push(Instant::from_millis(10), "AC", 1.0);
/// fig.push(Instant::from_millis(10), "AM Result", 0.0);
/// assert_eq!(fig.series("AC").unwrap().len(), 1);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SeriesSet {
    name: String,
    series: BTreeMap<String, Series>,
}

impl SeriesSet {
    /// Creates an empty, named set.
    pub fn new(name: impl Into<String>) -> Self {
        SeriesSet {
            name: name.into(),
            series: BTreeMap::new(),
        }
    }

    /// Name of the figure this set regenerates.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Appends a sample to the series called `series` (created on first use).
    pub fn push(&mut self, at: Instant, series: &str, value: f64) {
        self.series.entry(series.to_string()).or_default().push(at, value);
    }

    /// Looks up one series by name.
    pub fn series(&self, name: &str) -> Option<&Series> {
        self.series.get(name)
    }

    /// Names of all series, sorted.
    pub fn series_names(&self) -> impl Iterator<Item = &str> {
        self.series.keys().map(String::as_str)
    }

    /// Number of series.
    pub fn len(&self) -> usize {
        self.series.len()
    }

    /// `true` if the set holds no series.
    pub fn is_empty(&self) -> bool {
        self.series.is_empty()
    }

    /// Renders the set as a table (time column in ms + one column per series)
    /// followed by per-series sparklines, downsampling to at most
    /// `max_rows` rows.
    pub fn render_table(&self, max_rows: usize) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.name);
        // Collect the union of sample times.
        let mut times: Vec<Instant> = Vec::new();
        for s in self.series.values() {
            for sample in s.samples() {
                times.push(sample.at);
            }
        }
        times.sort_unstable();
        times.dedup();
        let step = (times.len().max(1) + max_rows - 1) / max_rows.max(1);
        let _ = write!(out, "{:>10}", "t[ms]");
        for name in self.series.keys() {
            let _ = write!(out, " {:>16}", name);
        }
        out.push('\n');
        for (i, t) in times.iter().enumerate() {
            if i % step.max(1) != 0 {
                continue;
            }
            let _ = write!(out, "{:>10}", t.as_millis());
            for s in self.series.values() {
                // Last sample at or before t (sample-and-hold, like a plot).
                let v = s
                    .samples()
                    .iter()
                    .take_while(|smp| smp.at <= *t)
                    .last()
                    .map(|smp| smp.value);
                match v {
                    Some(v) => {
                        let _ = write!(out, " {:>16.2}", v);
                    }
                    None => {
                        let _ = write!(out, " {:>16}", "-");
                    }
                }
            }
            out.push('\n');
        }
        for (name, s) in &self.series {
            let _ = writeln!(out, "{:>18}: {}", name, s.sparkline());
        }
        out
    }

    /// Renders each series as an ASCII line plot (`height` rows tall,
    /// `width` columns wide), stacked like the paper's ControlDesk panes:
    /// one pane per series, shared x axis, sample-and-hold interpolation.
    pub fn render_plot(&self, width: usize, height: usize) -> String {
        let width = width.max(10);
        let height = height.max(3);
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.name);
        // Shared time range.
        let (t0, t1) = match self.time_range() {
            Some(range) => range,
            None => return out,
        };
        let span = (t1.as_micros() - t0.as_micros()).max(1);
        for (name, series) in &self.series {
            let max = series.max().unwrap_or(0.0).max(1e-12);
            let mut grid = vec![vec![' '; width]; height];
            for col in 0..width {
                let t_us = t0.as_micros() + span * col as u64 / (width as u64 - 1).max(1);
                let t = Instant::from_micros(t_us);
                let v = series
                    .samples()
                    .iter()
                    .take_while(|s| s.at <= t)
                    .last()
                    .map(|s| s.value)
                    .unwrap_or(0.0);
                let level = ((v / max) * (height as f64 - 1.0)).round() as usize;
                let row = height - 1 - level.min(height - 1);
                grid[row][col] = '█';
                // Fill below the mark for a filled-area look.
                for r in grid.iter_mut().skip(row + 1) {
                    if r[col] == ' ' {
                        r[col] = '░';
                    }
                }
            }
            let _ = writeln!(out, "{name}  (max {max:.1})");
            for row in grid {
                let _ = writeln!(out, "  |{}", row.into_iter().collect::<String>());
            }
            let _ = writeln!(
                out,
                "  +{}",
                "-".repeat(width)
            );
            let _ = writeln!(
                out,
                "   {}ms{}{}ms",
                t0.as_millis(),
                " ".repeat(width.saturating_sub(12)),
                t1.as_millis()
            );
        }
        out
    }

    fn time_range(&self) -> Option<(Instant, Instant)> {
        let mut min = None;
        let mut max = None;
        for s in self.series.values() {
            if let (Some(first), Some(last)) = (s.samples().first(), s.samples().last()) {
                min = Some(min.map_or(first.at, |m: Instant| m.min(first.at)));
                max = Some(max.map_or(last.at, |m: Instant| m.max(last.at)));
            }
        }
        match (min, max) {
            (Some(a), Some(b)) if a < b => Some((a, b)),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> Instant {
        Instant::from_millis(ms)
    }

    #[test]
    fn series_tracks_samples_in_order() {
        let mut s = Series::new();
        s.push(t(0), 0.0);
        s.push(t(10), 1.0);
        s.push(t(10), 2.0); // same instant is allowed
        assert_eq!(s.len(), 3);
        assert_eq!(s.last_value(), Some(2.0));
        assert_eq!(s.max(), Some(2.0));
    }

    #[test]
    #[should_panic(expected = "time order")]
    fn series_rejects_out_of_order_samples() {
        let mut s = Series::new();
        s.push(t(10), 1.0);
        s.push(t(5), 2.0);
    }

    #[test]
    fn first_reached_finds_threshold_crossing() {
        let mut s = Series::new();
        s.push(t(0), 0.0);
        s.push(t(10), 1.0);
        s.push(t(20), 3.0);
        assert_eq!(s.first_reached(2.0), Some(t(20)));
        assert_eq!(s.first_reached(10.0), None);
    }

    #[test]
    fn sparkline_has_one_char_per_sample() {
        let mut s = Series::new();
        for i in 0..5 {
            s.push(t(i * 10), i as f64);
        }
        assert_eq!(s.sparkline().chars().count(), 5);
    }

    #[test]
    fn sparkline_of_flat_zero_series_is_lowest_bar() {
        let mut s = Series::new();
        s.push(t(0), 0.0);
        s.push(t(10), 0.0);
        assert_eq!(s.sparkline(), "▁▁");
    }

    #[test]
    fn series_set_groups_by_name() {
        let mut set = SeriesSet::new("demo");
        set.push(t(0), "AC", 1.0);
        set.push(t(0), "CCA", 0.0);
        set.push(t(10), "AC", 2.0);
        assert_eq!(set.len(), 2);
        assert_eq!(set.series("AC").unwrap().len(), 2);
        assert_eq!(set.series_names().collect::<Vec<_>>(), vec!["AC", "CCA"]);
    }

    #[test]
    fn render_table_contains_header_and_sparklines() {
        let mut set = SeriesSet::new("demo");
        set.push(t(0), "AC", 1.0);
        set.push(t(10), "AC", 2.0);
        let table = set.render_table(100);
        assert!(table.contains("== demo =="));
        assert!(table.contains("AC"));
        assert!(table.contains('▁') || table.contains('█'));
    }

    #[test]
    fn render_table_downsamples_to_max_rows() {
        let mut set = SeriesSet::new("big");
        for i in 0..1000 {
            set.push(t(i), "v", i as f64);
        }
        let table = set.render_table(10);
        // header + ~10 rows + 1 sparkline
        assert!(table.lines().count() <= 14, "got:\n{table}");
    }
}

#[cfg(test)]
mod plot_tests {
    use super::*;

    fn t(ms: u64) -> Instant {
        Instant::from_millis(ms)
    }

    #[test]
    fn plot_renders_one_pane_per_series() {
        let mut set = SeriesSet::new("demo");
        for i in 0..50 {
            set.push(t(i * 10), "a", i as f64);
            set.push(t(i * 10), "b", (50 - i) as f64);
        }
        let plot = set.render_plot(40, 6);
        assert!(plot.contains("a  (max 49.0)"));
        assert!(plot.contains("b  (max 50.0)"));
        // 6 grid rows per pane plus axis lines.
        assert!(plot.lines().filter(|l| l.starts_with("  |")).count() == 12);
    }

    #[test]
    fn plot_of_empty_set_is_just_the_header() {
        let set = SeriesSet::new("empty");
        let plot = set.render_plot(40, 6);
        assert_eq!(plot.lines().count(), 1);
    }

    #[test]
    fn plot_handles_single_sample_series() {
        let mut set = SeriesSet::new("one");
        set.push(t(5), "v", 1.0);
        // Single instant → no range → header only, no panic.
        let plot = set.render_plot(40, 6);
        assert!(plot.contains("== one =="));
    }

    #[test]
    fn staircase_shows_rising_levels() {
        let mut set = SeriesSet::new("stairs");
        for i in 0..100 {
            set.push(t(i * 10), "v", (i / 25) as f64);
        }
        let plot = set.render_plot(50, 4);
        let rows: Vec<&str> = plot.lines().filter(|l| l.starts_with("  |")).collect();
        // Top row must have marks only on the right side.
        let top = rows[0];
        let first_mark = top.find('█').expect("top level reached");
        assert!(first_mark > 30, "top marks start at {first_mark}: {top}");
    }
}

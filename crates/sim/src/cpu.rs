//! CPU cost model.
//!
//! The paper evaluates on a dSPACE AutoBox and names a Freescale S12XF as the
//! follow-up target. We do not have either; instead every monitored operation
//! carries an abstract *cycle* cost and a [`CpuModel`] converts cycles to
//! simulated time. Overhead experiments (table T-OVH in DESIGN.md) report
//! both cycles (hardware-independent) and microseconds under a named model.

use crate::time::Duration;
use serde::{Deserialize, Serialize};

/// Converts abstract CPU cycles into simulated execution time.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CpuModel {
    name: &'static str,
    clock_hz: u64,
}

impl CpuModel {
    /// A model of the dSPACE AutoBox DS1005 PPC board (480 MHz PowerPC),
    /// the paper's validation platform.
    pub const AUTOBOX: CpuModel = CpuModel {
        name: "AutoBox-DS1005",
        clock_hz: 480_000_000,
    };

    /// A model of the Freescale S12XF (50 MHz), the paper's outlook target.
    pub const S12XF: CpuModel = CpuModel {
        name: "S12XF",
        clock_hz: 50_000_000,
    };

    /// Creates a custom model.
    ///
    /// # Panics
    ///
    /// Panics if `clock_hz` is zero.
    pub const fn new(name: &'static str, clock_hz: u64) -> Self {
        assert!(clock_hz > 0, "clock frequency must be positive");
        CpuModel { name, clock_hz }
    }

    /// Model name, for report headers.
    pub const fn name(&self) -> &'static str {
        self.name
    }

    /// Clock frequency in Hz.
    pub const fn clock_hz(&self) -> u64 {
        self.clock_hz
    }

    /// Time taken to execute `cycles` cycles, rounded up to whole µs with a
    /// minimum of zero only for zero cycles.
    pub fn cycles_to_time(&self, cycles: u64) -> Duration {
        if cycles == 0 {
            return Duration::ZERO;
        }
        let micros = (cycles as u128 * 1_000_000).div_ceil(self.clock_hz as u128);
        Duration::from_micros(micros as u64)
    }

    /// Number of cycles that fit in `d` (truncating).
    pub fn time_to_cycles(&self, d: Duration) -> u64 {
        (d.as_micros() as u128 * self.clock_hz as u128 / 1_000_000) as u64
    }
}

impl Default for CpuModel {
    fn default() -> Self {
        CpuModel::AUTOBOX
    }
}

/// Accumulates cycle costs of a monitor, for overhead accounting.
///
/// # Examples
///
/// ```
/// use easis_sim::cpu::{CostMeter, CpuModel};
///
/// let mut meter = CostMeter::new();
/// meter.charge(120);
/// meter.charge(80);
/// assert_eq!(meter.total_cycles(), 200);
/// assert_eq!(meter.operations(), 2);
/// let time = CpuModel::S12XF.cycles_to_time(meter.total_cycles());
/// assert!(time.as_micros() >= 4);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CostMeter {
    total_cycles: u64,
    operations: u64,
}

impl CostMeter {
    /// Creates a zeroed meter.
    pub fn new() -> Self {
        CostMeter::default()
    }

    /// Adds one operation of `cycles` cycles.
    #[inline]
    pub fn charge(&mut self, cycles: u64) {
        self.total_cycles += cycles;
        self.operations += 1;
    }

    /// Total cycles charged so far.
    pub fn total_cycles(&self) -> u64 {
        self.total_cycles
    }

    /// Number of charged operations.
    pub fn operations(&self) -> u64 {
        self.operations
    }

    /// Mean cycles per operation (0 when nothing was charged).
    pub fn mean_cycles(&self) -> f64 {
        if self.operations == 0 {
            0.0
        } else {
            self.total_cycles as f64 / self.operations as f64
        }
    }

    /// Resets to zero.
    pub fn reset(&mut self) {
        *self = CostMeter::default();
    }

    /// Per-span delta: the charges accumulated since `earlier` was sampled.
    ///
    /// # Panics
    ///
    /// Panics if `earlier` is not actually an earlier sample of this meter
    /// (either counter would underflow).
    pub fn delta_since(&self, earlier: &CostMeter) -> CostMeter {
        CostMeter {
            total_cycles: self.total_cycles - earlier.total_cycles,
            operations: self.operations - earlier.operations,
        }
    }

    /// Applies `delta` `k` times in closed form — the macro-stepping
    /// engine's per-hyperperiod cost replay.
    pub fn accumulate(&mut self, delta: &CostMeter, k: u64) {
        self.total_cycles += delta.total_cycles * k;
        self.operations += delta.operations * k;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn autobox_is_faster_than_s12xf() {
        let cycles = 48_000;
        let fast = CpuModel::AUTOBOX.cycles_to_time(cycles);
        let slow = CpuModel::S12XF.cycles_to_time(cycles);
        assert!(fast < slow, "{fast} vs {slow}");
    }

    #[test]
    fn cycles_to_time_rounds_up() {
        // 1 cycle at 480 MHz is ~2ns; must round up to 1us, not truncate to 0.
        assert_eq!(CpuModel::AUTOBOX.cycles_to_time(1), Duration::from_micros(1));
        assert_eq!(CpuModel::AUTOBOX.cycles_to_time(0), Duration::ZERO);
    }

    #[test]
    fn round_trip_is_consistent_at_scale() {
        let d = Duration::from_millis(10);
        let cycles = CpuModel::S12XF.time_to_cycles(d);
        assert_eq!(cycles, 500_000);
        assert_eq!(CpuModel::S12XF.cycles_to_time(cycles), d);
    }

    #[test]
    fn meter_accumulates_and_averages() {
        let mut m = CostMeter::new();
        assert_eq!(m.mean_cycles(), 0.0);
        m.charge(10);
        m.charge(30);
        assert_eq!(m.total_cycles(), 40);
        assert_eq!(m.mean_cycles(), 20.0);
        m.reset();
        assert_eq!(m.operations(), 0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_clock_is_rejected() {
        let _ = CpuModel::new("broken", 0);
    }
}

//! Delta-snapshot lineage primitives shared by every checkpointable layer.
//!
//! The campaign engine forks thousands of trials off a common golden
//! prefix; a naive checkpoint copies the whole component state both ways.
//! Every snapshot-capable component in the stack instead follows one
//! epoch/lineage protocol built from the two pieces in this module:
//!
//! * each component keeps a monotone **epoch** (its current write stamp)
//!   and stamps every mutable *region* (a timer-wheel bucket, a TCB, an
//!   SoA column, a DTC record) with the epoch of its last write;
//! * `snapshot_into` copies content *and* stamps into a capacity-retained
//!   buffer, tags the buffer with a process-unique id from
//!   [`next_snapshot_id`], records that id as the component's
//!   `derived_from` lineage, and bumps the epoch so later writes stamp
//!   strictly newer;
//! * `restore_from` checks lineage: when the live component is still
//!   derived from exactly this snapshot, any region whose live stamp is
//!   `<=` the snapshot's epoch provably never changed since capture and
//!   is skipped — restore cost is O(dirty regions), not O(state). A
//!   lineage mismatch (different snapshot, a `reset()` in between, a
//!   shape change) falls back to a full copy.
//!
//! Resets must stamp all regions with the *current* epoch and clear
//! `derived_from` — never zero the stamps, or a snapshot→reset→restore
//! sequence would silently skip dirty regions.
//!
//! [`RestoreStats`] is how components report what a restore actually
//! copied; the campaign bench aggregates it into the
//! `restore_dirty_fraction` probe.

use core::sync::atomic::{AtomicU64, Ordering};

/// Returns a process-unique snapshot id (never 0, so `derived_from == 0`
/// always means "no lineage").
pub fn next_snapshot_id() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(1);
    NEXT.fetch_add(1, Ordering::Relaxed)
}

/// Region-level accounting of one `restore_from` call.
///
/// A *region* is the component-defined unit of dirty tracking; "copied"
/// counts regions whose content was written back, "total" counts all
/// regions examined (always-copied scalars count as copied — the ratio is
/// honest about what the restore really moved).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RestoreStats {
    /// Regions examined by the restore.
    pub regions_total: u64,
    /// Regions whose content was actually copied back.
    pub regions_copied: u64,
}

impl RestoreStats {
    /// Records one region; `copied` says whether its content was written.
    #[inline]
    pub fn region(&mut self, copied: bool) {
        self.regions_total += 1;
        self.regions_copied += u64::from(copied);
    }

    /// Records `n` regions that were all copied (or all skipped).
    #[inline]
    pub fn regions(&mut self, n: u64, copied: bool) {
        self.regions_total += n;
        if copied {
            self.regions_copied += n;
        }
    }

    /// Folds another component's stats into this one.
    #[inline]
    pub fn absorb(&mut self, other: RestoreStats) {
        self.regions_total += other.regions_total;
        self.regions_copied += other.regions_copied;
    }

    /// Copied-to-total ratio; `0.0` when nothing was examined.
    pub fn dirty_fraction(&self) -> f64 {
        if self.regions_total == 0 {
            0.0
        } else {
            self.regions_copied as f64 / self.regions_total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_ids_are_unique_and_nonzero() {
        let a = next_snapshot_id();
        let b = next_snapshot_id();
        assert_ne!(a, 0);
        assert_ne!(b, 0);
        assert_ne!(a, b);
    }

    #[test]
    fn restore_stats_accumulate_and_report_dirty_fraction() {
        let mut stats = RestoreStats::default();
        stats.region(true);
        stats.region(false);
        stats.regions(2, false);
        let mut sub = RestoreStats::default();
        sub.regions(4, true);
        stats.absorb(sub);
        assert_eq!(stats.regions_total, 8);
        assert_eq!(stats.regions_copied, 5);
        assert!((stats.dirty_fraction() - 5.0 / 8.0).abs() < 1e-12);
        assert_eq!(RestoreStats::default().dirty_fraction(), 0.0);
    }
}

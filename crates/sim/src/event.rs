//! Deterministic discrete-event queue.
//!
//! The [`EventQueue`] orders events by time; ties are broken by insertion
//! order so that a simulation run is fully reproducible regardless of the
//! container internals. The queue is generic over the event payload, letting
//! each layer (OS kernel, bus, vehicle model) define its own event vocabulary.
//!
//! Internally the queue is a hierarchical timer wheel tuned for the periodic
//! alarm workload of the OSEK kernel: each of the `LEVELS` levels has 64
//! slots of 64^level microseconds, so an event lands in a bucket with a
//! single shift/mask and the earliest pending time is found with a
//! trailing-zero count over the slot-occupancy bitmaps. Events beyond the top
//! level go to a sorted overflow map and cascade into the wheel as the cursor
//! reaches their window. The same-instant FIFO tie-break of the original
//! binary-heap implementation (lowest sequence number first) is preserved
//! exactly: every bucket scan resolves ties by sequence number.

use crate::snap::{next_snapshot_id, RestoreStats};
use crate::time::{Duration, Instant};
use std::collections::{BTreeMap, HashSet};

/// Handle identifying a scheduled event, usable for cancellation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EventId(u64);

impl EventId {
    /// Raw sequence number (monotonically increasing per queue).
    pub fn raw(self) -> u64 {
        self.0
    }
}

/// Bits per wheel level: 64 slots each.
const LEVEL_BITS: u32 = 6;
/// Slots per level.
const SLOTS: usize = 1 << LEVEL_BITS;
const SLOT_MASK: u64 = SLOTS as u64 - 1;
/// Wheel depth. Four levels cover 2^24 µs (~16.8 simulated seconds) past the
/// cursor's top-level window; anything later overflows to a sorted map.
const LEVELS: usize = 4;
/// Shift selecting the top-level window of a time (events differing here from
/// the cursor live in the overflow map).
const TOP_SHIFT: u32 = LEVEL_BITS * LEVELS as u32;

/// Where [`EventQueue::find_min`] located the earliest entry.
#[derive(Clone, Copy)]
enum Loc {
    /// `past[idx]`.
    Past(usize),
    /// `slots[level * SLOTS + slot][idx]`.
    Level { level: usize, slot: usize, idx: usize },
    /// `overflow[&key][idx]`.
    Overflow { key: u64, idx: usize },
}

/// One captured overflow window: the window key plus its
/// `(time, seq, payload)` entries, exactly as the wheel stores them.
type OverflowWindow<E> = (u64, Vec<(u64, u64, E)>);

/// The pending state of an [`EventQueue`] captured by
/// [`EventQueue::snapshot`] / [`EventQueue::snapshot_into`]. Opaque: its
/// only consumer is [`EventQueue::restore_from`] on a queue of the same
/// payload type. Overflow windows are stored as a sorted vector (not a
/// `BTreeMap`) so repeated captures into the same buffer reuse the window
/// vectors instead of reallocating map nodes.
#[derive(Debug, Clone)]
pub struct EventQueueSnapshot<E> {
    cursor: u64,
    slots: Vec<Vec<(u64, u64, E)>>,
    occupied: [u64; LEVELS],
    overflow: Vec<OverflowWindow<E>>,
    past: Vec<(u64, u64, E)>,
    head: Option<(u64, u64)>,
    next_seq: u64,
    live: usize,
    cancelled: HashSet<u64>,
    /// Per-bucket write stamps mirrored from the queue at capture time.
    stamps: Vec<u64>,
    past_stamp: u64,
    overflow_stamp: u64,
    cancelled_stamp: u64,
    /// Queue epoch at capture: every write after the capture stamps
    /// strictly greater, so `stamp <= epoch` proves a region unchanged.
    epoch: u64,
    /// Process-unique capture id checked against the queue's lineage.
    id: u64,
}

impl<E> EventQueueSnapshot<E> {
    /// Cursor (µs of the most recently popped wheel event) at capture time.
    pub fn cursor_micros(&self) -> u64 {
        self.cursor
    }

    /// Next sequence number the queue would hand out at capture time.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// `true` if no entry was scheduled behind the cursor at capture time.
    pub fn past_is_empty(&self) -> bool {
        self.past.is_empty()
    }

    /// `true` if no cancellation was pending at capture time.
    pub fn cancelled_is_empty(&self) -> bool {
        self.cancelled.is_empty()
    }

    /// Collects every pending `(time µs, seq, payload)` entry — wheel and
    /// overflow — into `out`, sorted by `(time, seq)`, i.e. in exact pop
    /// order. The wheel's *physical* bucket layout depends on the cursor
    /// history and is not canonical; this logical view is what the
    /// macro-stepping engine compares across hyperperiod samples (and what
    /// canonical state digests hash). Reuses `out`'s capacity.
    pub fn collect_entries(&self, out: &mut Vec<(u64, u64, E)>)
    where
        E: Clone,
    {
        out.clear();
        for ring in &self.slots {
            out.extend(ring.iter().cloned());
        }
        for (_, ring) in &self.overflow {
            out.extend(ring.iter().cloned());
        }
        out.extend(self.past.iter().cloned());
        out.sort_unstable_by_key(|&(t, seq, _)| (t, seq));
    }
}

impl<E> Default for EventQueueSnapshot<E> {
    fn default() -> Self {
        EventQueueSnapshot {
            cursor: 0,
            slots: Vec::new(),
            occupied: [0; LEVELS],
            overflow: Vec::new(),
            past: Vec::new(),
            head: None,
            next_seq: 0,
            live: 0,
            cancelled: HashSet::new(),
            stamps: Vec::new(),
            past_stamp: 0,
            overflow_stamp: 0,
            cancelled_stamp: 0,
            epoch: 0,
            id: 0,
        }
    }
}

/// A time-ordered queue of simulation events with stable tie-breaking.
///
/// # Examples
///
/// ```
/// use easis_sim::event::EventQueue;
/// use easis_sim::time::Instant;
///
/// let mut q = EventQueue::new();
/// q.schedule(Instant::from_micros(20), "late");
/// q.schedule(Instant::from_micros(10), "early");
/// let (t, e) = q.pop().unwrap();
/// assert_eq!((t.as_micros(), e), (10, "early"));
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    /// Time (µs) of the most recently popped wheel event. Every wheel and
    /// overflow entry is at or after the cursor; entries scheduled behind it
    /// live in `past`.
    cursor: u64,
    /// `LEVELS × SLOTS` buckets of `(time µs, seq, payload)`. Bucket order is
    /// not significant: scans resolve `(time, seq)` explicitly.
    slots: Vec<Vec<(u64, u64, E)>>,
    /// Per-level slot-occupancy bitmaps (bit `s` set ⇔ slot `s` non-empty).
    occupied: [u64; LEVELS],
    /// Events beyond the top wheel window, keyed by `time >> TOP_SHIFT`.
    overflow: BTreeMap<u64, Vec<(u64, u64, E)>>,
    /// Events scheduled behind the cursor (time moved "backwards" relative to
    /// the pop front). They precede every wheel entry, so ordering stays
    /// exact; the kernel never schedules in the past, keeping this empty.
    past: Vec<(u64, u64, E)>,
    /// Cached `(time µs, seq)` of the verified-live head; `None` = unknown.
    /// Makes the once-per-compute-slice `peek_time` O(1).
    head: Option<(u64, u64)>,
    /// Empty, capacity-retaining buffer swapped against a slot during a
    /// cascade so draining never drops the slot's allocation.
    cascade_scratch: Vec<(u64, u64, E)>,
    /// Retired overflow-window buffers, recycled when a new window opens or
    /// a restore reinserts one — overflow churn stays allocation-free warm.
    window_spare: Vec<Vec<(u64, u64, E)>>,
    next_seq: u64,
    live: usize,
    cancelled: HashSet<u64>,
    /// Per-wheel-bucket epoch of the last write (same indexing as `slots`).
    stamps: Vec<u64>,
    past_stamp: u64,
    overflow_stamp: u64,
    cancelled_stamp: u64,
    /// Current write stamp; bumped past the capture point by every
    /// `snapshot_into`/`restore_from` so stamps order writes across them.
    epoch: u64,
    /// Id of the snapshot this queue's state is known to derive from
    /// (0 = none); gates the delta path in [`EventQueue::restore_from`].
    derived_from: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        let mut slots = Vec::new();
        slots.resize_with(LEVELS * SLOTS, Vec::new);
        EventQueue {
            cursor: 0,
            slots,
            occupied: [0; LEVELS],
            overflow: BTreeMap::new(),
            past: Vec::new(),
            head: None,
            cascade_scratch: Vec::new(),
            window_spare: Vec::new(),
            next_seq: 0,
            live: 0,
            cancelled: HashSet::new(),
            stamps: vec![0; LEVELS * SLOTS],
            past_stamp: 0,
            overflow_stamp: 0,
            cancelled_stamp: 0,
            epoch: 0,
            derived_from: 0,
        }
    }

    /// Empties the queue while retaining all allocated slot capacity and
    /// resetting the cursor/sequence state to that of a fresh queue. A
    /// cleared queue schedules and pops exactly like [`EventQueue::new`]
    /// (same ids, same order) but re-arming the periodic-alarm workload
    /// after a reset allocates nothing — the campaign engine's pooled
    /// `Os::reset` relies on this.
    pub fn clear(&mut self) {
        self.cursor = 0;
        for bucket in &mut self.slots {
            bucket.clear();
        }
        self.occupied = [0; LEVELS];
        // Retire overflow-window buffers into the spare pool so the next
        // horizon's windows (or a later restore) reopen allocation-free.
        while let Some((_, ring)) = self.overflow.pop_first() {
            self.window_spare.push(ring);
        }
        self.past.clear();
        self.head = None;
        self.next_seq = 0;
        self.live = 0;
        self.cancelled.clear();
        // Everything changed: stamp all regions at the *current* epoch and
        // sever lineage, forcing the next restore onto the full path.
        // (Zeroing stamps instead would let a stale snapshot's delta path
        // skip regions this clear just emptied.)
        self.stamps.fill(self.epoch);
        self.past_stamp = self.epoch;
        self.overflow_stamp = self.epoch;
        self.cancelled_stamp = self.epoch;
        self.derived_from = 0;
    }

    /// Schedules `payload` to fire at `at`. Returns a handle for [`cancel`].
    ///
    /// Events scheduled for the same instant fire in the order they were
    /// scheduled.
    ///
    /// [`cancel`]: EventQueue::cancel
    pub fn schedule(&mut self, at: Instant, payload: E) -> EventId {
        let seq = self.next_seq;
        self.next_seq += 1;
        let t = at.as_micros();
        if let Some((head_at, _)) = self.head {
            if t < head_at {
                self.head = Some((t, seq));
            }
        }
        if t < self.cursor {
            self.past.push((t, seq, payload));
            self.past_stamp = self.epoch;
        } else {
            self.insert_wheel(t, seq, payload);
        }
        self.live += 1;
        EventId(seq)
    }

    /// Cancels a previously scheduled event. Returns `true` if the event was
    /// still pending; cancelling twice (or after the event fired) returns
    /// `false` and has no effect.
    pub fn cancel(&mut self, id: EventId) -> bool {
        if id.0 >= self.next_seq {
            return false;
        }
        if self.cancelled.insert(id.0) {
            self.cancelled_stamp = self.epoch;
            // The entry may have already popped; `live` is corrected lazily in
            // `pop`, so only mark it here.
            if self.head.is_some_and(|(_, seq)| seq == id.0) {
                self.head = None;
            }
            true
        } else {
            false
        }
    }

    /// Removes and returns the earliest pending event, skipping cancelled ones.
    pub fn pop(&mut self) -> Option<(Instant, E)> {
        while let Some((at, seq, payload)) = self.remove_min() {
            self.live = self.live.saturating_sub(1);
            if self.cancelled.remove(&seq) {
                self.cancelled_stamp = self.epoch;
                continue;
            }
            return Some((Instant::from_micros(at), payload));
        }
        None
    }

    /// Time of the earliest pending event, if any.
    pub fn peek_time(&mut self) -> Option<Instant> {
        if let Some((at, _)) = self.head {
            return Some(Instant::from_micros(at));
        }
        loop {
            let (at, seq, loc) = self.find_min()?;
            if self.cancelled.contains(&seq) {
                self.remove_at(loc);
                self.cancelled.remove(&seq);
                self.cancelled_stamp = self.epoch;
                self.live = self.live.saturating_sub(1);
                continue;
            }
            self.head = Some((at, seq));
            return Some(Instant::from_micros(at));
        }
    }

    /// Number of pending (non-cancelled) events.
    // `is_empty` purges lazily and therefore takes `&mut self`; the pair
    // intentionally deviates from the usual signatures.
    #[allow(clippy::len_without_is_empty)]
    pub fn len(&self) -> usize {
        self.live.saturating_sub(
            self.cancelled
                .len()
                .min(self.live),
        )
    }

    /// `true` if no events are pending. (Takes `&mut self` because cancelled
    /// entries are lazily purged during the check; clippy's convention lint
    /// is silenced for that reason.)
    #[allow(clippy::wrong_self_convention)]
    pub fn is_empty(&mut self) -> bool {
        self.peek_time().is_none()
    }

    // ------------------------------------------------------------------
    // Snapshot / restore
    // ------------------------------------------------------------------

    /// Captures the queue's complete pending state — cursor, every wheel
    /// bucket, overflow windows, behind-cursor entries, the head cache and
    /// the sequence/cancellation bookkeeping — so a later
    /// [`EventQueue::restore_from`] resumes scheduling and popping exactly
    /// where the snapshot was taken (same ids, same order). The cascade
    /// scratch buffer is transient (empty between operations) and is not
    /// part of the snapshot.
    pub fn snapshot(&mut self) -> EventQueueSnapshot<E>
    where
        E: Clone,
    {
        let mut snap = EventQueueSnapshot::default();
        self.snapshot_into(&mut snap);
        snap
    }

    /// Captures the queue's state into `snap`, reusing every buffer the
    /// snapshot already owns — repeated captures into the same snapshot are
    /// allocation-free once warm. Records this queue as derived from the
    /// capture and bumps the write epoch, enabling the delta path of
    /// [`EventQueue::restore_from`].
    pub fn snapshot_into(&mut self, snap: &mut EventQueueSnapshot<E>)
    where
        E: Clone,
    {
        self.copy_content_into(snap);
        snap.id = next_snapshot_id();
        self.derived_from = snap.id;
        self.epoch += 1;
    }

    /// Captures the queue's content into `snap` *without* joining the
    /// restore lineage: the queue's `derived_from`/epoch bookkeeping is left
    /// untouched and the capture gets id 0, so it can never satisfy a
    /// [`EventQueue::restore_from`] delta check. This is the capture the
    /// macro-stepping engine uses for its hyperperiod samples — taking a
    /// real snapshot there would sever the campaign checkpoints' lineage
    /// and degrade their delta restores to full copies.
    pub fn image_into(&self, snap: &mut EventQueueSnapshot<E>)
    where
        E: Clone,
    {
        self.copy_content_into(snap);
        snap.id = 0;
    }

    /// Shared content copy behind [`EventQueue::snapshot_into`] (which adds
    /// the lineage tail) and [`EventQueue::image_into`] (which does not).
    fn copy_content_into(&self, snap: &mut EventQueueSnapshot<E>)
    where
        E: Clone,
    {
        snap.cursor = self.cursor;
        if snap.slots.len() != self.slots.len() {
            snap.slots.clear();
            snap.slots.resize_with(self.slots.len(), Vec::new);
        }
        for (dst, src) in snap.slots.iter_mut().zip(&self.slots) {
            dst.clone_from(src);
        }
        snap.occupied = self.occupied;
        snap.overflow.truncate(self.overflow.len());
        while snap.overflow.len() < self.overflow.len() {
            snap.overflow.push((0, Vec::new()));
        }
        for (dst, (key, ring)) in snap.overflow.iter_mut().zip(&self.overflow) {
            dst.0 = *key;
            dst.1.clone_from(ring);
        }
        snap.past.clone_from(&self.past);
        snap.head = self.head;
        snap.next_seq = self.next_seq;
        snap.live = self.live;
        snap.cancelled.clone_from(&self.cancelled);
        snap.stamps.clone_from(&self.stamps);
        snap.past_stamp = self.past_stamp;
        snap.overflow_stamp = self.overflow_stamp;
        snap.cancelled_stamp = self.cancelled_stamp;
        snap.epoch = self.epoch;
    }

    /// Restores the queue to a previously captured snapshot and reports how
    /// many regions (wheel buckets, the past/overflow/cancelled groups plus
    /// one scalar header) had to be copied.
    ///
    /// When the queue's state still derives from exactly this snapshot, any
    /// bucket whose write stamp is at or before the capture epoch provably
    /// never changed and is skipped — O(dirty) instead of O(state). On a
    /// lineage mismatch (different snapshot, an intervening [`clear`], a
    /// shape change) everything is copied. Either way buffers are
    /// overwritten in place (`clone_from`, spare-pool recycling for
    /// overflow windows), so restoring onto a warm queue allocates nothing
    /// in steady state.
    ///
    /// [`clear`]: EventQueue::clear
    pub fn restore_from(&mut self, snap: &EventQueueSnapshot<E>) -> RestoreStats
    where
        E: Clone,
    {
        let mut stats = RestoreStats::default();
        let full = self.derived_from != snap.id || self.slots.len() != snap.slots.len();
        // Scalar header: always written back (one region).
        self.cursor = snap.cursor;
        self.occupied = snap.occupied;
        self.head = snap.head;
        self.next_seq = snap.next_seq;
        self.live = snap.live;
        stats.region(true);
        if self.slots.len() != snap.slots.len() {
            self.slots.clear();
            self.slots.resize_with(snap.slots.len(), Vec::new);
            self.stamps.clear();
            self.stamps.resize(snap.slots.len(), 0);
        }
        for i in 0..self.slots.len() {
            let copy = full || self.stamps[i] > snap.epoch;
            stats.region(copy);
            if copy {
                self.slots[i].clone_from(&snap.slots[i]);
                self.stamps[i] = snap.stamps[i];
            }
        }
        let copy_past = full || self.past_stamp > snap.epoch;
        stats.region(copy_past);
        if copy_past {
            self.past.clone_from(&snap.past);
            self.past_stamp = snap.past_stamp;
        }
        let copy_cancelled = full || self.cancelled_stamp > snap.epoch;
        stats.region(copy_cancelled);
        if copy_cancelled {
            self.cancelled.clone_from(&snap.cancelled);
            self.cancelled_stamp = snap.cancelled_stamp;
        }
        let copy_overflow = full || self.overflow_stamp > snap.epoch;
        stats.region(copy_overflow);
        if copy_overflow {
            self.restore_overflow(&snap.overflow);
            self.overflow_stamp = snap.overflow_stamp;
        }
        self.derived_from = snap.id;
        self.epoch = self.epoch.max(snap.epoch) + 1;
        stats
    }

    /// Rebuilds the overflow map from a snapshot's sorted window list,
    /// recycling retired window buffers through the spare pool and
    /// overwriting surviving windows in place.
    fn restore_overflow(&mut self, src: &[OverflowWindow<E>])
    where
        E: Clone,
    {
        let spare = &mut self.window_spare;
        self.overflow.retain(|key, ring| {
            if src.binary_search_by_key(key, |&(k, _)| k).is_ok() {
                true
            } else {
                spare.push(std::mem::take(ring));
                false
            }
        });
        for (key, ring) in src {
            match self.overflow.entry(*key) {
                std::collections::btree_map::Entry::Occupied(e) => {
                    e.into_mut().clone_from(ring);
                }
                std::collections::btree_map::Entry::Vacant(e) => {
                    let mut buf = self.window_spare.pop().unwrap_or_default();
                    buf.clear();
                    buf.extend(ring.iter().cloned());
                    e.insert(buf);
                }
            }
        }
    }

    /// Shifts every pending entry `shift` later in time and `seq_shift`
    /// higher in sequence, advances the cursor by `shift`, and lets `fixup`
    /// rewrite each payload in place (the kernel uses this to slide
    /// per-activation sequence numbers carried inside deadline-check
    /// events). This is the timer-wheel half of a hyperperiod macro-jump:
    /// after the macro-stepping engine has proved the queue's logical
    /// content at `t` and `t + H` identical up to these shifts, applying
    /// them advances the queue k hyperperiods in O(pending) instead of
    /// replaying every expiry.
    ///
    /// The wheel buckets are drained and every entry re-inserted relative
    /// to the new cursor, so the physical layout after a jump can differ
    /// from the layout event-by-event simulation would have produced; pop
    /// order is `(time, seq)`-logical, so behavior is unaffected. Touched
    /// buckets are stamped, keeping delta restores over a jump correct.
    ///
    /// # Panics
    ///
    /// Panics if any entry is behind the cursor or a cancellation is
    /// pending — the macro-stepping guards reject such states before
    /// certifying a jump, so reaching here with one is a caller bug.
    pub fn fast_forward(&mut self, shift: Duration, seq_shift: u64, mut fixup: impl FnMut(&mut E)) {
        assert!(
            self.past.is_empty(),
            "fast_forward with behind-cursor entries pending"
        );
        assert!(
            self.cancelled.is_empty(),
            "fast_forward with cancellations pending"
        );
        let shift_us = shift.as_micros();
        let mut entries = std::mem::take(&mut self.cascade_scratch);
        debug_assert!(entries.is_empty());
        for level in 0..LEVELS {
            let mut bits = self.occupied[level];
            while bits != 0 {
                let slot = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                let idx = level * SLOTS + slot;
                entries.append(&mut self.slots[idx]);
                self.stamps[idx] = self.epoch;
            }
            self.occupied[level] = 0;
        }
        while let Some((_, mut ring)) = self.overflow.pop_first() {
            entries.append(&mut ring);
            self.window_spare.push(ring);
            self.overflow_stamp = self.epoch;
        }
        self.cursor += shift_us;
        self.next_seq += seq_shift;
        self.head = None;
        for (t, seq, mut payload) in entries.drain(..) {
            fixup(&mut payload);
            self.insert_wheel(t + shift_us, seq + seq_shift, payload);
        }
        self.cascade_scratch = entries;
    }

    /// Total buffer capacity (in entries/elements) retained across the
    /// wheel buckets, past list, overflow windows, spare pools and the
    /// cancellation set. Steady-state workloads keep this constant across
    /// repeated snapshot/restore cycles — the capacity-retention tests
    /// assert on it.
    pub fn retained_capacity(&self) -> usize {
        self.slots.iter().map(Vec::capacity).sum::<usize>()
            + self.past.capacity()
            + self.cascade_scratch.capacity()
            + self.overflow.values().map(Vec::capacity).sum::<usize>()
            + self.window_spare.iter().map(Vec::capacity).sum::<usize>()
            + self.window_spare.capacity()
            + self.cancelled.capacity()
    }

    // ------------------------------------------------------------------
    // Wheel internals
    // ------------------------------------------------------------------

    /// Buckets an entry (`t >= cursor`) at the lowest level whose window
    /// around the cursor contains it, or in the overflow map.
    fn insert_wheel(&mut self, t: u64, seq: u64, payload: E) {
        debug_assert!(t >= self.cursor);
        for level in 0..LEVELS {
            let window = LEVEL_BITS * (level as u32 + 1);
            if t >> window == self.cursor >> window {
                let slot = ((t >> (LEVEL_BITS * level as u32)) & SLOT_MASK) as usize;
                self.slots[level * SLOTS + slot].push((t, seq, payload));
                self.stamps[level * SLOTS + slot] = self.epoch;
                self.occupied[level] |= 1u64 << slot;
                return;
            }
        }
        let spare = &mut self.window_spare;
        self.overflow
            .entry(t >> TOP_SHIFT)
            .or_insert_with(|| {
                // Spare buffers may still hold the entries of the retired
                // window they came from; only their capacity is reused.
                let mut buf = spare.pop().unwrap_or_default();
                buf.clear();
                buf
            })
            .push((t, seq, payload));
        self.overflow_stamp = self.epoch;
    }

    /// Locates the earliest `(time, seq)` entry without removing it.
    ///
    /// Ordering argument: `past` entries are strictly before the cursor and
    /// therefore before every wheel entry; within the wheel, level `l` holds
    /// only times inside the cursor's level-`l+1` window while level `l+1`
    /// holds times beyond it, so the first non-empty level contains the
    /// minimum, in its lowest occupied slot (slot indices do not wrap within
    /// an aligned window); overflow windows come last, in key order.
    fn find_min(&self) -> Option<(u64, u64, Loc)> {
        fn scan<T>(ring: &[(u64, u64, T)]) -> usize {
            let mut best = 0;
            for i in 1..ring.len() {
                if (ring[i].0, ring[i].1) < (ring[best].0, ring[best].1) {
                    best = i;
                }
            }
            best
        }
        if !self.past.is_empty() {
            let idx = scan(&self.past);
            let (at, seq, _) = self.past[idx];
            return Some((at, seq, Loc::Past(idx)));
        }
        for level in 0..LEVELS {
            let bits = self.occupied[level];
            if bits == 0 {
                continue;
            }
            let slot = bits.trailing_zeros() as usize;
            let ring = &self.slots[level * SLOTS + slot];
            let idx = scan(ring);
            let (at, seq, _) = ring[idx];
            return Some((at, seq, Loc::Level { level, slot, idx }));
        }
        if let Some((&key, ring)) = self.overflow.iter().next() {
            let idx = scan(ring);
            let (at, seq, _) = ring[idx];
            return Some((at, seq, Loc::Overflow { key, idx }));
        }
        None
    }

    /// Physically removes the entry at `loc`, maintaining the bitmaps.
    fn remove_at(&mut self, loc: Loc) -> (u64, u64, E) {
        match loc {
            Loc::Past(idx) => {
                self.past_stamp = self.epoch;
                self.past.swap_remove(idx)
            }
            Loc::Level { level, slot, idx } => {
                let ring = &mut self.slots[level * SLOTS + slot];
                let entry = ring.swap_remove(idx);
                self.stamps[level * SLOTS + slot] = self.epoch;
                if ring.is_empty() {
                    self.occupied[level] &= !(1u64 << slot);
                }
                entry
            }
            Loc::Overflow { key, idx } => {
                let ring = self.overflow.get_mut(&key).expect("overflow key present");
                let entry = ring.swap_remove(idx);
                self.overflow_stamp = self.epoch;
                if ring.is_empty() {
                    let retired = self.overflow.remove(&key).expect("ring just accessed");
                    self.window_spare.push(retired);
                }
                entry
            }
        }
    }

    /// Removes and returns the earliest entry (cancelled or not).
    fn remove_min(&mut self) -> Option<(u64, u64, E)> {
        self.head = None;
        let (at, seq, loc) = self.find_min()?;
        match loc {
            // Entries behind the cursor pop directly; the cursor stays put.
            Loc::Past(_) => Some(self.remove_at(loc)),
            _ => {
                // Advance the cursor to the event being popped: windows the
                // cursor enters cascade down and the minimum lands in level 0.
                self.advance_to(at);
                let slot = (at & SLOT_MASK) as usize;
                let idx = self.slots[slot]
                    .iter()
                    .position(|&(a, s, _)| a == at && s == seq)
                    .expect("minimum present in level 0 after cascade");
                Some(self.remove_at(Loc::Level { level: 0, slot, idx }))
            }
        }
    }

    /// Moves the cursor forward to `m` (the pending minimum) and cascades: at
    /// each level the slot containing `m` is drained and its entries re-bucket
    /// at a strictly lower level; an overflow window reaching the wheel is
    /// migrated in. Safe because no pending entry precedes `m`: any slot the
    /// drain touches holds only times sharing `m`'s window at that level.
    fn advance_to(&mut self, m: u64) {
        debug_assert!(m >= self.cursor);
        if m == self.cursor {
            return;
        }
        self.cursor = m;
        if let Some(mut batch) = self.overflow.remove(&(m >> TOP_SHIFT)) {
            self.overflow_stamp = self.epoch;
            for (t, seq, payload) in batch.drain(..) {
                self.insert_wheel(t, seq, payload);
            }
            self.window_spare.push(batch);
        }
        for level in (1..LEVELS).rev() {
            let slot = ((m >> (LEVEL_BITS * level as u32)) & SLOT_MASK) as usize;
            if self.occupied[level] & (1u64 << slot) == 0 {
                continue;
            }
            // Swap the slot's buffer against the reusable cascade scratch
            // instead of `mem::take`ing it: taking would drop the buffer
            // (and its capacity) after the drain, costing an allocation per
            // re-bucketed event in steady state. With the swap, capacities
            // circulate between the scratch and the slots and the periodic
            // alarm workload cascades allocation-free once warm.
            let mut batch = std::mem::replace(
                &mut self.slots[level * SLOTS + slot],
                std::mem::take(&mut self.cascade_scratch),
            );
            self.stamps[level * SLOTS + slot] = self.epoch;
            self.occupied[level] &= !(1u64 << slot);
            for (t, seq, payload) in batch.drain(..) {
                self.insert_wheel(t, seq, payload);
            }
            self.cascade_scratch = batch;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(us: u64) -> Instant {
        Instant::from_micros(us)
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(t(30), 3);
        q.schedule(t(10), 1);
        q.schedule(t(20), 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn simultaneous_events_fire_in_insertion_order() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(t(5), i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn cancel_removes_event() {
        let mut q = EventQueue::new();
        let a = q.schedule(t(10), "a");
        q.schedule(t(20), "b");
        assert!(q.cancel(a));
        assert_eq!(q.pop(), Some((t(20), "b")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn double_cancel_is_noop() {
        let mut q = EventQueue::new();
        let a = q.schedule(t(10), "a");
        assert!(q.cancel(a));
        assert!(!q.cancel(a));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn cancel_unknown_id_returns_false() {
        let mut q: EventQueue<()> = EventQueue::new();
        assert!(!q.cancel(EventId(99)));
    }

    #[test]
    fn peek_time_skips_cancelled_head() {
        let mut q = EventQueue::new();
        let a = q.schedule(t(10), "a");
        q.schedule(t(20), "b");
        q.cancel(a);
        assert_eq!(q.peek_time(), Some(t(20)));
        assert_eq!(q.pop(), Some((t(20), "b")));
    }

    #[test]
    fn is_empty_reflects_cancellations() {
        let mut q = EventQueue::new();
        let a = q.schedule(t(10), "a");
        assert!(!q.is_empty());
        q.cancel(a);
        assert!(q.is_empty());
    }

    #[test]
    fn interleaved_schedule_and_pop_remain_ordered() {
        let mut q = EventQueue::new();
        q.schedule(t(10), 1);
        q.schedule(t(30), 3);
        assert_eq!(q.pop(), Some((t(10), 1)));
        q.schedule(t(20), 2);
        assert_eq!(q.pop(), Some((t(20), 2)));
        assert_eq!(q.pop(), Some((t(30), 3)));
    }

    #[test]
    fn same_instant_fifo_survives_wheel_cascades() {
        // Events at one far instant start two wheel levels up; popping the
        // near marker first forces them to cascade down through the levels,
        // which must not disturb their insertion order.
        let mut q = EventQueue::new();
        let far = 3 * 4096 + 129; // level 2 relative to cursor 0
        for i in 0..32 {
            q.schedule(t(far), i);
        }
        q.schedule(t(5), 999);
        assert_eq!(q.pop(), Some((t(5), 999)));
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..32).collect::<Vec<_>>());
    }

    #[test]
    fn far_future_events_beyond_top_level_pop_in_order() {
        // 2^24 µs is the wheel horizon; these live in the overflow map.
        let mut q = EventQueue::new();
        let horizon = 1u64 << 24;
        q.schedule(t(40 * horizon + 7), "second-window");
        q.schedule(t(3 * horizon + 11), "first-window-b");
        q.schedule(t(3 * horizon + 2), "first-window-a");
        q.schedule(t(500), "near");
        assert_eq!(q.pop(), Some((t(500), "near")));
        assert_eq!(q.pop(), Some((t(3 * horizon + 2), "first-window-a")));
        assert_eq!(q.pop(), Some((t(3 * horizon + 11), "first-window-b")));
        assert_eq!(q.pop(), Some((t(40 * horizon + 7), "second-window")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn same_instant_fifo_beyond_top_level() {
        let mut q = EventQueue::new();
        let far = (1u64 << 26) + 42;
        for i in 0..10 {
            q.schedule(t(far), i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn cancel_and_rearm_pending_alarm() {
        // The kernel's alarm pattern: cancel the pending expiry, re-arm at a
        // different offset; only the re-armed event fires.
        let mut q = EventQueue::new();
        let stale = q.schedule(t(10_000), "stale");
        assert!(q.cancel(stale));
        let _fresh = q.schedule(t(4_000), "fresh");
        assert_eq!(q.peek_time(), Some(t(4_000)));
        assert_eq!(q.pop(), Some((t(4_000), "fresh")));
        assert_eq!(q.pop(), None);
        // Re-arm again after popping; the queue stays usable.
        q.schedule(t(20_000), "again");
        assert_eq!(q.pop(), Some((t(20_000), "again")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn clear_replays_like_a_fresh_queue() {
        let mut q = EventQueue::new();
        let a = q.schedule(t(10), "a");
        q.schedule(t(1 << 26), "overflow");
        q.schedule(t(5), "past-maker");
        assert_eq!(q.pop(), Some((t(5), "past-maker")));
        q.schedule(t(3), "behind");
        assert!(q.cancel(a));
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.pop(), None);
        // Ids and ordering restart exactly as on a fresh queue.
        let first = q.schedule(t(30), "x");
        assert_eq!(first.raw(), 0);
        q.schedule(t(20), "y");
        assert_eq!(q.pop(), Some((t(20), "y")));
        assert_eq!(q.pop(), Some((t(30), "x")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn snapshot_restore_replays_identically() {
        // Build a queue with entries in every region: wheel, overflow,
        // behind-cursor, plus a pending cancellation.
        let mut q = EventQueue::new();
        q.schedule(t(1_000), "first");
        q.schedule(t(50_000), "later");
        q.schedule(t(1 << 26), "overflow");
        let doomed = q.schedule(t(2_000), "doomed");
        assert_eq!(q.pop(), Some((t(1_000), "first")));
        q.schedule(t(900), "behind-cursor");
        q.cancel(doomed);

        let snap = q.snapshot();
        fn drain(q: &mut EventQueue<&'static str>) -> Vec<(u64, &'static str)> {
            std::iter::from_fn(|| q.pop().map(|(at, e)| (at.as_micros(), e))).collect()
        }
        let reference = drain(&mut q);
        q.restore_from(&snap);
        assert_eq!(drain(&mut q), reference);
        // Restored queues also continue identically after new activity.
        q.restore_from(&snap);
        let a = q.schedule(t(700), "new");
        assert_eq!(a.raw(), snap.next_seq);
        assert_eq!(q.pop(), Some((t(700), "new")));
        assert_eq!(drain(&mut q), reference);
    }

    #[test]
    fn delta_restore_matches_full_restore_and_skips_clean_buckets() {
        let build = || {
            let mut q = EventQueue::new();
            for i in 0..40u64 {
                q.schedule(t(1_000 + 64 * i), i);
            }
            q.schedule(t(1 << 26), 900);
            q
        };
        let mut q = build();
        let mut snap = EventQueueSnapshot::default();
        q.snapshot_into(&mut snap);

        // Dirty a handful of buckets, then delta-restore.
        for _ in 0..3 {
            q.pop();
        }
        q.schedule(t(2_000), 901);
        let delta = q.restore_from(&snap);
        assert!(
            delta.regions_copied < delta.regions_total / 2,
            "delta restore copied {}/{} regions",
            delta.regions_copied,
            delta.regions_total
        );

        // A fresh queue has no lineage: the same snapshot restores fully.
        let mut fresh = build();
        let copy = fresh.restore_from(&snap);
        assert_eq!(copy.regions_copied, copy.regions_total);

        fn drain(q: &mut EventQueue<u64>) -> Vec<(u64, u64)> {
            std::iter::from_fn(|| q.pop().map(|(at, e)| (at.as_micros(), e))).collect()
        }
        let via_delta = drain(&mut q);
        let via_full = drain(&mut fresh);
        assert_eq!(via_delta, via_full);
    }

    #[test]
    fn repeated_restore_retains_all_capacity() {
        let mut q = EventQueue::new();
        for i in 0..32u64 {
            q.schedule(t(500 + 10 * i), i);
        }
        // Two overflow windows plus behind-cursor and cancelled entries so
        // every region is exercised.
        q.schedule(t(1 << 26), 100);
        q.schedule(t(3 << 26), 101);
        let doomed = q.schedule(t(800), 102);
        q.cancel(doomed);
        q.pop();
        q.schedule(t(400), 103);
        let mut snap = EventQueueSnapshot::default();
        q.snapshot_into(&mut snap);

        // Cascade swaps circulate buffer capacities between wheel buckets,
        // so the footprint needs a few churn+restore cycles to reach its
        // fixed point; once warm, repeated restores must not grow anything.
        let churn = |q: &mut EventQueue<u64>| {
            for _ in 0..8 {
                q.pop();
            }
            q.schedule(t(5 << 26), 200);
            q.schedule(t(100), 201);
            q.restore_from(&snap);
        };
        let signatures: Vec<usize> = (0..20)
            .map(|_| {
                churn(&mut q);
                q.retained_capacity()
            })
            .collect();
        let warm = *signatures.last().unwrap();
        assert!(
            signatures[10..].iter().all(|&s| s == warm),
            "restore kept growing retained buffers: {signatures:?}"
        );

        // Capturing into the same snapshot buffer again is also stable.
        let snap_cap: usize = snap.slots.iter().map(Vec::capacity).sum::<usize>()
            + snap.overflow.iter().map(|(_, v)| v.capacity()).sum::<usize>()
            + snap.past.capacity();
        q.snapshot_into(&mut snap);
        let snap_cap_after: usize = snap.slots.iter().map(Vec::capacity).sum::<usize>()
            + snap.overflow.iter().map(|(_, v)| v.capacity()).sum::<usize>()
            + snap.past.capacity();
        assert_eq!(snap_cap, snap_cap_after);
    }

    #[test]
    fn fast_forward_matches_rescheduled_queue() {
        // A queue fast-forwarded by `shift` must pop exactly like a queue
        // whose entries were scheduled `shift` later to begin with,
        // including overflow entries and same-instant FIFO ties.
        let shift = Duration::from_micros(40_000);
        let seqs = 3u64; // pretend 3 schedules happened during the span
        let mut q = EventQueue::new();
        let mut reference = EventQueue::new();
        q.schedule(t(1_000), 0u64);
        reference.schedule(t(1_000), 0u64);
        assert_eq!(q.pop(), Some((t(1_000), 0)));
        assert_eq!(reference.pop(), Some((t(1_000), 0)));
        for (at, tag) in [(5_000u64, 1u64), (5_000, 2), (9_500, 3), (1 << 26, 4)] {
            q.schedule(t(at), tag);
            reference.schedule(t(at + shift.as_micros()), tag);
        }
        q.fast_forward(shift, seqs, |_| {});
        assert_eq!(q.peek_time(), reference.peek_time());
        let drained: Vec<_> = std::iter::from_fn(|| q.pop()).collect();
        let expected: Vec<_> = std::iter::from_fn(|| reference.pop()).collect();
        assert_eq!(drained, expected);
        // New schedules continue from the shifted sequence space.
        assert_eq!(q.schedule(t(1 << 27), 9).raw(), 5 + seqs);
    }

    #[test]
    fn image_capture_leaves_lineage_intact() {
        // An image between a snapshot and its restore must not break the
        // delta path: the restore should still skip clean buckets.
        let mut q = EventQueue::new();
        for i in 0..40u64 {
            q.schedule(t(1_000 + 64 * i), i);
        }
        let mut snap = EventQueueSnapshot::default();
        q.snapshot_into(&mut snap);
        q.pop();
        let mut image = EventQueueSnapshot::default();
        q.image_into(&mut image);
        assert_eq!(image.id, 0);
        let stats = q.restore_from(&snap);
        assert!(
            stats.regions_copied < stats.regions_total / 2,
            "image capture severed the snapshot lineage: {}/{} regions copied",
            stats.regions_copied,
            stats.regions_total
        );
    }

    #[test]
    fn schedule_behind_the_pop_front_stays_ordered() {
        // Popping advances the wheel cursor; events scheduled before it
        // must still pop ahead of later ones.
        let mut q = EventQueue::new();
        q.schedule(t(1_000), "first");
        q.schedule(t(50_000), "last");
        assert_eq!(q.pop(), Some((t(1_000), "first")));
        q.schedule(t(2_000), "mid");
        q.schedule(t(900), "behind-cursor");
        assert_eq!(q.pop(), Some((t(900), "behind-cursor")));
        assert_eq!(q.pop(), Some((t(2_000), "mid")));
        assert_eq!(q.pop(), Some((t(50_000), "last")));
    }
}

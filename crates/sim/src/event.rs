//! Deterministic discrete-event queue.
//!
//! The [`EventQueue`] orders events by time; ties are broken by insertion
//! order so that a simulation run is fully reproducible regardless of heap
//! internals. The queue is generic over the event payload, letting each layer
//! (OS kernel, bus, vehicle model) define its own event vocabulary.

use crate::time::Instant;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Handle identifying a scheduled event, usable for cancellation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EventId(u64);

impl EventId {
    /// Raw sequence number (monotonically increasing per queue).
    pub fn raw(self) -> u64 {
        self.0
    }
}

#[derive(Debug)]
struct Entry<E> {
    at: Instant,
    seq: u64,
    cancelled: bool,
    payload: Option<E>,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest event pops first,
        // with the lowest sequence number winning ties.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A time-ordered queue of simulation events with stable tie-breaking.
///
/// # Examples
///
/// ```
/// use easis_sim::event::EventQueue;
/// use easis_sim::time::Instant;
///
/// let mut q = EventQueue::new();
/// q.schedule(Instant::from_micros(20), "late");
/// q.schedule(Instant::from_micros(10), "early");
/// let (t, e) = q.pop().unwrap();
/// assert_eq!((t.as_micros(), e), (10, "early"));
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
    live: usize,
    cancelled: std::collections::HashSet<u64>,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            live: 0,
            cancelled: std::collections::HashSet::new(),
        }
    }

    /// Schedules `payload` to fire at `at`. Returns a handle for [`cancel`].
    ///
    /// Events scheduled for the same instant fire in the order they were
    /// scheduled.
    ///
    /// [`cancel`]: EventQueue::cancel
    pub fn schedule(&mut self, at: Instant, payload: E) -> EventId {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry {
            at,
            seq,
            cancelled: false,
            payload: Some(payload),
        });
        self.live += 1;
        EventId(seq)
    }

    /// Cancels a previously scheduled event. Returns `true` if the event was
    /// still pending; cancelling twice (or after the event fired) returns
    /// `false` and has no effect.
    pub fn cancel(&mut self, id: EventId) -> bool {
        if id.0 >= self.next_seq {
            return false;
        }
        if self.cancelled.insert(id.0) {
            // The entry may have already popped; `live` is corrected lazily in
            // `pop`, so only mark it here.
            true
        } else {
            false
        }
    }

    /// Removes and returns the earliest pending event, skipping cancelled ones.
    pub fn pop(&mut self) -> Option<(Instant, E)> {
        while let Some(mut entry) = self.heap.pop() {
            if self.cancelled.remove(&entry.seq) || entry.cancelled {
                self.live = self.live.saturating_sub(1);
                continue;
            }
            self.live = self.live.saturating_sub(1);
            let payload = entry.payload.take().expect("entry payload present");
            return Some((entry.at, payload));
        }
        None
    }

    /// Time of the earliest pending event, if any.
    pub fn peek_time(&mut self) -> Option<Instant> {
        loop {
            let skip = match self.heap.peek() {
                Some(entry) => self.cancelled.contains(&entry.seq),
                None => return None,
            };
            if skip {
                let entry = self.heap.pop().expect("peeked entry exists");
                self.cancelled.remove(&entry.seq);
                self.live = self.live.saturating_sub(1);
            } else {
                return self.heap.peek().map(|e| e.at);
            }
        }
    }

    /// Number of pending (non-cancelled) events.
    // `is_empty` purges lazily and therefore takes `&mut self`; the pair
    // intentionally deviates from the usual signatures.
    #[allow(clippy::len_without_is_empty)]
    pub fn len(&self) -> usize {
        self.live.saturating_sub(
            self.cancelled
                .len()
                .min(self.live),
        )
    }

    /// `true` if no events are pending. (Takes `&mut self` because cancelled
    /// entries are lazily purged during the check; clippy's convention lint
    /// is silenced for that reason.)
    #[allow(clippy::wrong_self_convention)]
    pub fn is_empty(&mut self) -> bool {
        self.peek_time().is_none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(us: u64) -> Instant {
        Instant::from_micros(us)
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(t(30), 3);
        q.schedule(t(10), 1);
        q.schedule(t(20), 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn simultaneous_events_fire_in_insertion_order() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(t(5), i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn cancel_removes_event() {
        let mut q = EventQueue::new();
        let a = q.schedule(t(10), "a");
        q.schedule(t(20), "b");
        assert!(q.cancel(a));
        assert_eq!(q.pop(), Some((t(20), "b")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn double_cancel_is_noop() {
        let mut q = EventQueue::new();
        let a = q.schedule(t(10), "a");
        assert!(q.cancel(a));
        assert!(!q.cancel(a));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn cancel_unknown_id_returns_false() {
        let mut q: EventQueue<()> = EventQueue::new();
        assert!(!q.cancel(EventId(99)));
    }

    #[test]
    fn peek_time_skips_cancelled_head() {
        let mut q = EventQueue::new();
        let a = q.schedule(t(10), "a");
        q.schedule(t(20), "b");
        q.cancel(a);
        assert_eq!(q.peek_time(), Some(t(20)));
        assert_eq!(q.pop(), Some((t(20), "b")));
    }

    #[test]
    fn is_empty_reflects_cancellations() {
        let mut q = EventQueue::new();
        let a = q.schedule(t(10), "a");
        assert!(!q.is_empty());
        q.cancel(a);
        assert!(q.is_empty());
    }

    #[test]
    fn interleaved_schedule_and_pop_remain_ordered() {
        let mut q = EventQueue::new();
        q.schedule(t(10), 1);
        q.schedule(t(30), 3);
        assert_eq!(q.pop(), Some((t(10), 1)));
        q.schedule(t(20), 2);
        assert_eq!(q.pop(), Some((t(20), 2)));
        assert_eq!(q.pop(), Some((t(30), 3)));
    }
}

//! Trace recording.
//!
//! Every layer of the simulated platform logs its observable actions into a
//! [`TraceRecorder`]: task dispatches, runnable starts/ends, heartbeats,
//! detected errors, bus frames, fault treatments. Tests and the experiment
//! harness assert on the trace instead of peeking into component internals,
//! mirroring how the paper's evaluation reads ControlDesk plots rather than
//! memory dumps.

use crate::time::Instant;
use serde::{Deserialize, Serialize};
use std::fmt;

/// One timestamped trace record.
#[derive(Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceEvent {
    /// When the event happened.
    pub at: Instant,
    /// Which component emitted it (e.g. `"osek"`, `"watchdog"`, `"can0"`).
    pub source: String,
    /// Event kind, a stable machine-readable tag (e.g. `"dispatch"`).
    pub kind: String,
    /// Free-form detail (task name, runnable name, error description …).
    pub detail: String,
}

impl Clone for TraceEvent {
    fn clone(&self) -> Self {
        TraceEvent {
            at: self.at,
            source: self.source.clone(),
            kind: self.kind.clone(),
            detail: self.detail.clone(),
        }
    }

    // Field-wise so `Vec<TraceEvent>::clone_from` reuses each event's
    // string buffers — snapshot capture stays allocation-free once the
    // destination trace has seen strings at least as long.
    fn clone_from(&mut self, source: &Self) {
        self.at = source.at;
        self.source.clone_from(&source.source);
        self.kind.clone_from(&source.kind);
        self.detail.clone_from(&source.detail);
    }
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{:>10}us] {:<10} {:<18} {}",
            self.at.as_micros(),
            self.source,
            self.kind,
            self.detail
        )
    }
}

/// An append-only recorder of [`TraceEvent`]s.
///
/// # Examples
///
/// ```
/// use easis_sim::trace::TraceRecorder;
/// use easis_sim::time::Instant;
///
/// let mut trace = TraceRecorder::new();
/// trace.record(Instant::from_millis(1), "watchdog", "heartbeat", "GetSensorValue");
/// assert_eq!(trace.count_kind("heartbeat"), 1);
/// ```
#[derive(Debug, Default)]
pub struct TraceRecorder {
    events: Vec<TraceEvent>,
    enabled: bool,
}

impl Clone for TraceRecorder {
    fn clone(&self) -> Self {
        TraceRecorder {
            events: self.events.clone(),
            enabled: self.enabled,
        }
    }

    // Capacity-retained: snapshot buffers clone_from the live trace every
    // capture without reallocating the event vector or its strings.
    fn clone_from(&mut self, source: &Self) {
        self.events.clone_from(&source.events);
        self.enabled = source.enabled;
    }
}

impl TraceRecorder {
    /// Creates an enabled, empty recorder.
    pub fn new() -> Self {
        TraceRecorder {
            events: Vec::new(),
            enabled: true,
        }
    }

    /// Creates a recorder that drops everything (for overhead benchmarks).
    pub fn disabled() -> Self {
        TraceRecorder {
            events: Vec::new(),
            enabled: false,
        }
    }

    /// Appends an event.
    pub fn record(
        &mut self,
        at: Instant,
        source: impl Into<String>,
        kind: impl Into<String>,
        detail: impl Into<String>,
    ) {
        if self.enabled {
            self.events.push(TraceEvent {
                at,
                source: source.into(),
                kind: kind.into(),
                detail: detail.into(),
            });
        }
    }

    /// Whether [`TraceRecorder::record`] currently retains events. Callers
    /// that build an expensive `detail` string should check this first —
    /// `record` receives the string *after* it was formatted, too late to
    /// save the allocation.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// All recorded events, in recording order (which is time order as long
    /// as callers record at the current simulation time).
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Iterator over events of one kind.
    pub fn of_kind<'a>(&'a self, kind: &'a str) -> impl Iterator<Item = &'a TraceEvent> + 'a {
        self.events.iter().filter(move |e| e.kind == kind)
    }

    /// Iterator over events from one source.
    pub fn of_source<'a>(&'a self, source: &'a str) -> impl Iterator<Item = &'a TraceEvent> + 'a {
        self.events.iter().filter(move |e| e.source == source)
    }

    /// Number of events with the given kind.
    pub fn count_kind(&self, kind: &str) -> usize {
        self.of_kind(kind).count()
    }

    /// First event of the given kind, if any. Useful for detection-latency
    /// measurements.
    pub fn first_of_kind(&self, kind: &str) -> Option<&TraceEvent> {
        self.events.iter().find(|e| e.kind == kind)
    }

    /// First event of the given kind at or after `at`.
    pub fn first_of_kind_after(&self, kind: &str, at: Instant) -> Option<&TraceEvent> {
        self.events.iter().find(|e| e.kind == kind && e.at >= at)
    }

    /// Total number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// `true` if nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Drops all recorded events, keeping the enabled flag.
    pub fn clear(&mut self) {
        self.events.clear();
    }

    /// Renders the whole trace as text, one event per line.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for e in &self.events {
            out.push_str(&e.to_string());
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(us: u64) -> Instant {
        Instant::from_micros(us)
    }

    #[test]
    fn records_and_filters_by_kind_and_source() {
        let mut trace = TraceRecorder::new();
        trace.record(t(1), "osek", "dispatch", "TaskA");
        trace.record(t(2), "watchdog", "heartbeat", "R1");
        trace.record(t(3), "watchdog", "heartbeat", "R2");
        assert_eq!(trace.len(), 3);
        assert_eq!(trace.count_kind("heartbeat"), 2);
        assert_eq!(trace.of_source("osek").count(), 1);
    }

    #[test]
    fn first_of_kind_after_respects_time_bound() {
        let mut trace = TraceRecorder::new();
        trace.record(t(10), "wd", "error", "early");
        trace.record(t(50), "wd", "error", "late");
        let hit = trace.first_of_kind_after("error", t(20)).unwrap();
        assert_eq!(hit.detail, "late");
        assert!(trace.first_of_kind_after("error", t(60)).is_none());
    }

    #[test]
    fn disabled_recorder_drops_everything() {
        let mut trace = TraceRecorder::disabled();
        trace.record(t(1), "x", "y", "z");
        assert!(trace.is_empty());
    }

    #[test]
    fn clear_empties_the_trace() {
        let mut trace = TraceRecorder::new();
        trace.record(t(1), "x", "y", "z");
        trace.clear();
        assert!(trace.is_empty());
        trace.record(t(2), "x", "y", "z");
        assert_eq!(trace.len(), 1);
    }

    #[test]
    fn render_is_one_line_per_event() {
        let mut trace = TraceRecorder::new();
        trace.record(t(1), "a", "b", "c");
        trace.record(t(2), "d", "e", "f");
        assert_eq!(trace.render().lines().count(), 2);
    }
}

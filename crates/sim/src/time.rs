//! Simulated time.
//!
//! All simulation time is measured in whole microseconds since simulation
//! start. Two newtypes keep points in time and spans of time apart:
//! [`Instant`] (a point) and [`Duration`] (a span). Both are plain `u64`
//! wrappers, cheap to copy and totally ordered.
//!
//! The 10 ms tick used by the paper's ControlDesk plots corresponds to
//! [`Duration::from_millis`]`(10)`.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Rem, Sub, SubAssign};

/// A point in simulated time, in microseconds since simulation start.
///
/// # Examples
///
/// ```
/// use easis_sim::time::{Duration, Instant};
///
/// let t = Instant::ZERO + Duration::from_millis(10);
/// assert_eq!(t.as_micros(), 10_000);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct Instant(u64);

/// A span of simulated time, in microseconds.
///
/// # Examples
///
/// ```
/// use easis_sim::time::Duration;
///
/// let period = Duration::from_millis(10);
/// assert_eq!(period * 3, Duration::from_micros(30_000));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct Duration(u64);

impl Instant {
    /// The simulation start.
    pub const ZERO: Instant = Instant(0);

    /// Creates an instant `micros` microseconds after simulation start.
    pub const fn from_micros(micros: u64) -> Self {
        Instant(micros)
    }

    /// Creates an instant `millis` milliseconds after simulation start.
    pub const fn from_millis(millis: u64) -> Self {
        Instant(millis * 1_000)
    }

    /// Microseconds since simulation start.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Whole milliseconds since simulation start (truncating).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000
    }

    /// Seconds since simulation start as a float (for plotting/reporting).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Time elapsed since `earlier`.
    ///
    /// # Panics
    ///
    /// Panics if `earlier` is later than `self`.
    pub fn duration_since(self, earlier: Instant) -> Duration {
        Duration(
            self.0
                .checked_sub(earlier.0)
                .expect("`earlier` must not be later than `self`"),
        )
    }

    /// Time elapsed since `earlier`, or [`Duration::ZERO`] if `earlier` is later.
    pub fn saturating_duration_since(self, earlier: Instant) -> Duration {
        Duration(self.0.saturating_sub(earlier.0))
    }

    /// Checked addition; `None` on overflow.
    pub fn checked_add(self, d: Duration) -> Option<Instant> {
        self.0.checked_add(d.0).map(Instant)
    }
}

impl Duration {
    /// The empty span.
    pub const ZERO: Duration = Duration(0);
    /// The largest representable span; used as an "infinite" horizon.
    pub const MAX: Duration = Duration(u64::MAX);

    /// Creates a duration of `micros` microseconds.
    pub const fn from_micros(micros: u64) -> Self {
        Duration(micros)
    }

    /// Creates a duration of `millis` milliseconds.
    pub const fn from_millis(millis: u64) -> Self {
        Duration(millis * 1_000)
    }

    /// Creates a duration of `secs` seconds.
    pub const fn from_secs(secs: u64) -> Self {
        Duration(secs * 1_000_000)
    }

    /// Length in microseconds.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Length in whole milliseconds (truncating).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000
    }

    /// Length in seconds as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// `true` if this is the empty span.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: Duration) -> Duration {
        Duration(self.0.saturating_sub(other.0))
    }

    /// Checked multiplication by an integer factor; `None` on overflow.
    pub fn checked_mul(self, factor: u64) -> Option<Duration> {
        self.0.checked_mul(factor).map(Duration)
    }

    /// Scales by a non-negative float factor, rounding to the nearest
    /// microsecond. Used by the execution-frequency error injector, which
    /// models the paper's ControlDesk "time scalar" slider.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is negative or not finite.
    pub fn mul_f64(self, factor: f64) -> Duration {
        assert!(
            factor.is_finite() && factor >= 0.0,
            "scale factor must be finite and non-negative"
        );
        Duration((self.0 as f64 * factor).round() as u64)
    }
}

impl Add<Duration> for Instant {
    type Output = Instant;
    fn add(self, rhs: Duration) -> Instant {
        Instant(self.0 + rhs.0)
    }
}

impl AddAssign<Duration> for Instant {
    fn add_assign(&mut self, rhs: Duration) {
        self.0 += rhs.0;
    }
}

impl Sub<Duration> for Instant {
    type Output = Instant;
    fn sub(self, rhs: Duration) -> Instant {
        Instant(self.0 - rhs.0)
    }
}

impl Sub<Instant> for Instant {
    type Output = Duration;
    fn sub(self, rhs: Instant) -> Duration {
        self.duration_since(rhs)
    }
}

impl Add for Duration {
    type Output = Duration;
    fn add(self, rhs: Duration) -> Duration {
        Duration(self.0 + rhs.0)
    }
}

impl AddAssign for Duration {
    fn add_assign(&mut self, rhs: Duration) {
        self.0 += rhs.0;
    }
}

impl Sub for Duration {
    type Output = Duration;
    fn sub(self, rhs: Duration) -> Duration {
        Duration(
            self.0
                .checked_sub(rhs.0)
                .expect("duration subtraction underflow"),
        )
    }
}

impl SubAssign for Duration {
    fn sub_assign(&mut self, rhs: Duration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for Duration {
    type Output = Duration;
    fn mul(self, rhs: u64) -> Duration {
        Duration(self.0 * rhs)
    }
}

impl Div<u64> for Duration {
    type Output = Duration;
    fn div(self, rhs: u64) -> Duration {
        Duration(self.0 / rhs)
    }
}

impl Div<Duration> for Duration {
    type Output = u64;
    fn div(self, rhs: Duration) -> u64 {
        self.0 / rhs.0
    }
}

impl Rem<Duration> for Duration {
    type Output = Duration;
    fn rem(self, rhs: Duration) -> Duration {
        Duration(self.0 % rhs.0)
    }
}

impl fmt::Display for Instant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{}us", self.0)
    }
}

impl fmt::Display for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000 && self.0.is_multiple_of(1_000_000) {
            write!(f, "{}s", self.0 / 1_000_000)
        } else if self.0 >= 1_000 && self.0.is_multiple_of(1_000) {
            write!(f, "{}ms", self.0 / 1_000)
        } else {
            write!(f, "{}us", self.0)
        }
    }
}

impl From<Duration> for std::time::Duration {
    fn from(d: Duration) -> Self {
        std::time::Duration::from_micros(d.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn instant_arithmetic_round_trips() {
        let t = Instant::from_millis(5);
        let d = Duration::from_micros(250);
        assert_eq!((t + d) - t, d);
        assert_eq!((t + d) - d, t);
    }

    #[test]
    fn duration_since_measures_elapsed_time() {
        let a = Instant::from_micros(100);
        let b = Instant::from_micros(350);
        assert_eq!(b.duration_since(a), Duration::from_micros(250));
    }

    #[test]
    #[should_panic(expected = "`earlier` must not be later")]
    fn duration_since_panics_on_negative_span() {
        let a = Instant::from_micros(100);
        let b = Instant::from_micros(350);
        let _ = a.duration_since(b);
    }

    #[test]
    fn saturating_duration_since_clamps_to_zero() {
        let a = Instant::from_micros(100);
        let b = Instant::from_micros(350);
        assert_eq!(a.saturating_duration_since(b), Duration::ZERO);
    }

    #[test]
    fn duration_scaling() {
        let d = Duration::from_millis(10);
        assert_eq!(d * 3, Duration::from_millis(30));
        assert_eq!(d / 2, Duration::from_millis(5));
        assert_eq!(d.mul_f64(2.5), Duration::from_micros(25_000));
        assert_eq!(d.mul_f64(0.0), Duration::ZERO);
    }

    #[test]
    fn duration_ratio_and_remainder() {
        let period = Duration::from_millis(10);
        let span = Duration::from_millis(35);
        assert_eq!(span / period, 3);
        assert_eq!(span % period, Duration::from_millis(5));
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn mul_f64_rejects_negative_factors() {
        let _ = Duration::from_millis(1).mul_f64(-1.0);
    }

    #[test]
    fn display_picks_natural_unit() {
        assert_eq!(Duration::from_secs(2).to_string(), "2s");
        assert_eq!(Duration::from_millis(10).to_string(), "10ms");
        assert_eq!(Duration::from_micros(7).to_string(), "7us");
        assert_eq!(Instant::from_micros(42).to_string(), "t+42us");
    }

    #[test]
    fn checked_ops_report_overflow() {
        assert!(Instant::from_micros(u64::MAX).checked_add(Duration::from_micros(1)).is_none());
        assert!(Duration::MAX.checked_mul(2).is_none());
        assert_eq!(
            Duration::from_millis(1).checked_mul(3),
            Some(Duration::from_millis(3))
        );
    }

    #[test]
    fn conversion_to_std_duration() {
        let d: std::time::Duration = Duration::from_millis(10).into();
        assert_eq!(d, std::time::Duration::from_millis(10));
    }
}

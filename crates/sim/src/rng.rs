//! Deterministic randomness.
//!
//! Experiments must be reproducible from a seed. [`SimRng`] wraps a
//! counter-derived SplitMix64 generator: cheap, seedable, and — unlike
//! library defaults — guaranteed stable across dependency upgrades, so
//! recorded experiment outputs stay comparable.

use serde::{Deserialize, Serialize};

/// A small, stable, seedable pseudo-random generator (SplitMix64).
///
/// # Examples
///
/// ```
/// use easis_sim::rng::SimRng;
///
/// let mut a = SimRng::seed_from(42);
/// let mut b = SimRng::seed_from(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SimRng {
    state: u64,
}

impl SimRng {
    /// Creates a generator from a seed. Equal seeds yield equal streams.
    pub fn seed_from(seed: u64) -> Self {
        SimRng { state: seed }
    }

    /// Derives an independent child generator, e.g. one per campaign trial.
    /// Children of the same parent with different tags are decorrelated.
    pub fn derive(&self, tag: u64) -> SimRng {
        let mut child = SimRng {
            state: self.state ^ tag.wrapping_mul(0x9E37_79B9_7F4A_7C15),
        };
        // Burn one output so `derive(0)` differs from the parent stream.
        child.next_u64();
        child
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        // Rejection sampling to avoid modulo bias.
        let zone = u64::MAX - (u64::MAX % bound);
        loop {
            let v = self.next_u64();
            if v < zone {
                return v % bound;
            }
        }
    }

    /// Uniform value in the inclusive range `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn next_in(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "range must be non-empty");
        if lo == hi {
            return lo;
        }
        lo + self.next_below(hi - lo + 1)
    }

    /// Uniform float in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli draw with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p.clamp(0.0, 1.0)
    }

    /// Picks a uniformly random element of `items`.
    ///
    /// # Panics
    ///
    /// Panics if `items` is empty.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        assert!(!items.is_empty(), "cannot pick from an empty slice");
        &items[self.next_below(items.len() as u64) as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_seeds_give_equal_streams() {
        let mut a = SimRng::seed_from(7);
        let mut b = SimRng::seed_from(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::seed_from(1);
        let mut b = SimRng::seed_from(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn derived_children_are_decorrelated() {
        let parent = SimRng::seed_from(9);
        let mut c0 = parent.derive(0);
        let mut c1 = parent.derive(1);
        assert_ne!(c0.next_u64(), c1.next_u64());
    }

    #[test]
    fn next_below_stays_in_bounds() {
        let mut rng = SimRng::seed_from(3);
        for _ in 0..1000 {
            assert!(rng.next_below(7) < 7);
        }
    }

    #[test]
    fn next_in_covers_full_inclusive_range() {
        let mut rng = SimRng::seed_from(4);
        let mut seen = [false; 5];
        for _ in 0..500 {
            seen[rng.next_in(0, 4) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all values should occur: {seen:?}");
        assert_eq!(rng.next_in(9, 9), 9);
    }

    #[test]
    fn next_f64_is_unit_interval() {
        let mut rng = SimRng::seed_from(5);
        for _ in 0..1000 {
            let v = rng.next_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn chance_extremes() {
        let mut rng = SimRng::seed_from(6);
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
    }

    #[test]
    fn pick_returns_member() {
        let mut rng = SimRng::seed_from(8);
        let items = ["a", "b", "c"];
        for _ in 0..20 {
            assert!(items.contains(rng.pick(&items)));
        }
    }

    #[test]
    #[should_panic(expected = "bound must be positive")]
    fn next_below_zero_panics() {
        SimRng::seed_from(1).next_below(0);
    }
}

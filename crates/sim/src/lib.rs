//! # easis-sim — deterministic simulation substrate
//!
//! Foundation crate of the EASIS Software Watchdog reproduction (DSN 2007).
//! The paper validates its watchdog on a hardware-in-the-loop rig (dSPACE
//! AutoBox + ControlDesk); this crate supplies the deterministic replacement:
//!
//! * [`time`] — microsecond-resolution simulated [`time::Instant`] /
//!   [`time::Duration`];
//! * [`event`] — a discrete-event queue with stable tie-breaking;
//! * [`trace`] — the observable-action log every layer writes to;
//! * [`series`] — time-series capture used to regenerate the paper's plots;
//! * [`cpu`] — abstract cycle costs and CPU models (AutoBox, S12XF);
//! * [`rng`] — stable seedable randomness for fault campaigns.
//!
//! # Examples
//!
//! ```
//! use easis_sim::event::EventQueue;
//! use easis_sim::time::{Duration, Instant};
//!
//! // A miniature simulation loop.
//! let mut queue = EventQueue::new();
//! queue.schedule(Instant::ZERO + Duration::from_millis(10), "tick");
//! while let Some((now, event)) = queue.pop() {
//!     assert_eq!(event, "tick");
//!     assert_eq!(now.as_millis(), 10);
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cpu;
pub mod event;
pub mod rng;
pub mod series;
pub mod snap;
pub mod time;
pub mod trace;

pub use cpu::{CostMeter, CpuModel};
pub use snap::{next_snapshot_id, RestoreStats};
pub use event::{EventId, EventQueue};
pub use rng::SimRng;
pub use series::{Series, SeriesSet};
pub use time::{Duration, Instant};
pub use trace::{TraceEvent, TraceRecorder};

//! Control Flow Checking by Software Signatures (CFCSS) baseline.
//!
//! The paper contrasts its look-up-table PFC with "the widely discussed
//! method of using embedded signatures as proposed in \[10\]" — Oh, Shirvani,
//! McCluskey, *Control-Flow Checking by Software Signatures*, IEEE Trans.
//! Reliability 51(1), 2002 — rejected for "high performance overhead and
//! low flexibility with regard to modification of programs". This module
//! implements CFCSS at basic-block granularity so the overhead experiment
//! (T-OVH in DESIGN.md) can quantify that trade-off:
//!
//! * every basic block `v` carries a compile-time signature `s_v`;
//! * a run-time signature register `G` is updated on block entry with the
//!   XOR difference `d_v = s_v ⊕ s_{p0(v)}` (`p0` = designated predecessor);
//! * branch-fan-in blocks additionally XOR a run-time adjusting signature
//!   `D`, assigned in the predecessor, so every legal path re-derives
//!   `G = s_v`;
//! * `G ≠ s_v` on entry signals a control-flow error.

use easis_sim::cpu::CostMeter;
use easis_sim::rng::SimRng;
use serde::{Deserialize, Serialize};

/// Instrumentation cost per executed block: XOR-update, compare, branch.
pub const BLOCK_CHECK_COST_CYCLES: u64 = 5;
/// Extra cost in predecessors of branch-fan-in blocks: assigning `D`.
pub const ADJUST_COST_CYCLES: u64 = 2;

/// Index of a basic block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct BlockId(pub u32);

impl BlockId {
    fn index(self) -> usize {
        self.0 as usize
    }
}

/// A program's control-flow graph over basic blocks.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ControlFlowGraph {
    succs: Vec<Vec<u32>>,
}

impl ControlFlowGraph {
    /// Creates a graph with `blocks` isolated blocks.
    pub fn new(blocks: usize) -> Self {
        ControlFlowGraph {
            succs: vec![Vec::new(); blocks],
        }
    }

    /// A straight-line chain `0 → 1 → … → n-1 → 0` (a periodic runnable
    /// body).
    pub fn chain(blocks: usize) -> Self {
        assert!(blocks > 0, "need at least one block");
        let mut g = ControlFlowGraph::new(blocks);
        for i in 0..blocks {
            g.add_edge(BlockId(i as u32), BlockId(((i + 1) % blocks) as u32));
        }
        g
    }

    /// Adds a legal edge.
    ///
    /// # Panics
    ///
    /// Panics if either block is out of range.
    pub fn add_edge(&mut self, from: BlockId, to: BlockId) {
        assert!(from.index() < self.succs.len(), "unknown source block");
        assert!(to.index() < self.succs.len(), "unknown target block");
        if !self.succs[from.index()].contains(&to.0) {
            self.succs[from.index()].push(to.0);
        }
    }

    /// Number of blocks.
    pub fn block_count(&self) -> usize {
        self.succs.len()
    }

    /// `true` if `from → to` is a legal edge.
    pub fn has_edge(&self, from: BlockId, to: BlockId) -> bool {
        self.succs[from.index()].contains(&to.0)
    }

    fn predecessors(&self, v: usize) -> Vec<usize> {
        (0..self.succs.len())
            .filter(|&p| self.succs[p].contains(&(v as u32)))
            .collect()
    }
}

/// A CFCSS-instrumented program: graph + signature/diff tables.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CfcssProgram {
    graph: ControlFlowGraph,
    signatures: Vec<u32>,
    /// `d_v = s_v ⊕ s_{p0(v)}` (entry blocks use `d = 0`).
    diffs: Vec<u32>,
    /// Designated predecessor per block (usize::MAX for entry blocks).
    designated: Vec<usize>,
    fan_in: Vec<bool>,
}

impl CfcssProgram {
    /// Instruments a graph, assigning unique random signatures from `seed`.
    pub fn instrument(graph: ControlFlowGraph, seed: u64) -> Self {
        let n = graph.block_count();
        let mut rng = SimRng::seed_from(seed);
        let mut signatures = Vec::with_capacity(n);
        while signatures.len() < n {
            let s = rng.next_u64() as u32;
            if !signatures.contains(&s) {
                signatures.push(s);
            }
        }
        let mut diffs = vec![0u32; n];
        let mut designated = vec![usize::MAX; n];
        let mut fan_in = vec![false; n];
        for v in 0..n {
            let preds = graph.predecessors(v);
            if let Some(&p0) = preds.first() {
                designated[v] = p0;
                diffs[v] = signatures[v] ^ signatures[p0];
                fan_in[v] = preds.len() > 1;
            }
        }
        CfcssProgram {
            graph,
            signatures,
            diffs,
            designated,
            fan_in,
        }
    }

    /// Signature of a block.
    pub fn signature(&self, b: BlockId) -> u32 {
        self.signatures[b.index()]
    }

    /// The instrumented graph.
    pub fn graph(&self) -> &ControlFlowGraph {
        &self.graph
    }

    /// Number of branch-fan-in blocks (each of their predecessors pays the
    /// `D`-assignment cost).
    pub fn fan_in_count(&self) -> usize {
        self.fan_in.iter().filter(|&&f| f).count()
    }
}

/// The run-time part of CFCSS: the `G`/`D` registers plus error counting.
#[derive(Debug, Clone)]
pub struct CfcssMonitor {
    program: CfcssProgram,
    g: u32,
    d: u32,
    current: Option<usize>,
    errors: u64,
}

impl CfcssMonitor {
    /// Starts monitoring at `entry` (initialises `G = s_entry`, as the
    /// instrumented prologue would).
    pub fn new(program: CfcssProgram, entry: BlockId) -> Self {
        let g = program.signature(entry);
        CfcssMonitor {
            program,
            g,
            d: 0,
            current: Some(entry.index()),
            errors: 0,
        }
    }

    /// Simulates entering block `v`; returns `true` if the signature check
    /// failed (control-flow error detected). `costs` is charged the
    /// per-block instrumentation overhead.
    pub fn enter(&mut self, v: BlockId, costs: &mut CostMeter) -> bool {
        let vi = v.index();
        costs.charge(BLOCK_CHECK_COST_CYCLES);
        // The predecessor's instrumentation only runs on *legal* edges: an
        // illegal jump skips the D assignment, leaving a stale D.
        if let Some(cur) = self.current {
            let legal = self.program.graph.has_edge(BlockId(cur as u32), v);
            if legal && self.program.fan_in[vi] {
                costs.charge(ADJUST_COST_CYCLES);
                let p0 = self.program.designated[vi];
                self.d = self.program.signatures[p0] ^ self.program.signatures[cur];
            }
        }
        let mut g = self.g ^ self.program.diffs[vi];
        if self.program.fan_in[vi] {
            g ^= self.d;
        }
        let failed = g != self.program.signatures[vi];
        if failed {
            self.errors += 1;
            // Resynchronise so monitoring continues past the error handler.
            g = self.program.signatures[vi];
        }
        self.g = g;
        self.current = Some(vi);
        failed
    }

    /// Cumulative detected control-flow errors.
    pub fn errors(&self) -> u64 {
        self.errors
    }

    /// The current signature register (for tests/diagnostics).
    pub fn g(&self) -> u32 {
        self.g
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(n: u32) -> BlockId {
        BlockId(n)
    }

    /// Diamond: 0 → {1, 2} → 3 → 0 (3 is branch-fan-in).
    fn diamond() -> ControlFlowGraph {
        let mut g = ControlFlowGraph::new(4);
        g.add_edge(b(0), b(1));
        g.add_edge(b(0), b(2));
        g.add_edge(b(1), b(3));
        g.add_edge(b(2), b(3));
        g.add_edge(b(3), b(0));
        g
    }

    #[test]
    fn legal_chain_never_flags() {
        let prog = CfcssProgram::instrument(ControlFlowGraph::chain(6), 1);
        let mut mon = CfcssMonitor::new(prog, b(0));
        let mut costs = CostMeter::new();
        for round in 0..10 {
            for i in 1..6 {
                assert!(!mon.enter(b(i), &mut costs), "round {round} block {i}");
            }
            assert!(!mon.enter(b(0), &mut costs));
        }
        assert_eq!(mon.errors(), 0);
    }

    #[test]
    fn both_diamond_paths_are_legal() {
        let prog = CfcssProgram::instrument(diamond(), 2);
        let mut mon = CfcssMonitor::new(prog, b(0));
        let mut costs = CostMeter::new();
        // Path via 1.
        assert!(!mon.enter(b(1), &mut costs));
        assert!(!mon.enter(b(3), &mut costs));
        assert!(!mon.enter(b(0), &mut costs));
        // Path via 2 (fan-in adjusting signature must fix G up).
        assert!(!mon.enter(b(2), &mut costs));
        assert!(!mon.enter(b(3), &mut costs));
        assert!(!mon.enter(b(0), &mut costs));
        assert_eq!(mon.errors(), 0);
    }

    #[test]
    fn illegal_jump_is_detected() {
        let prog = CfcssProgram::instrument(ControlFlowGraph::chain(6), 3);
        let mut mon = CfcssMonitor::new(prog, b(0));
        let mut costs = CostMeter::new();
        assert!(!mon.enter(b(1), &mut costs));
        // Corrupted program counter: jump 1 → 4 (legal is 1 → 2).
        assert!(mon.enter(b(4), &mut costs));
        assert_eq!(mon.errors(), 1);
        // After resync, the legal continuation is clean again.
        assert!(!mon.enter(b(5), &mut costs));
    }

    #[test]
    fn illegal_jump_into_fan_in_is_detected() {
        let prog = CfcssProgram::instrument(diamond(), 4);
        let mut mon = CfcssMonitor::new(prog, b(0));
        let mut costs = CostMeter::new();
        assert!(!mon.enter(b(1), &mut costs));
        assert!(!mon.enter(b(3), &mut costs));
        // Illegal: 3 → 2 (legal successor of 3 is only 0).
        assert!(mon.enter(b(2), &mut costs));
        assert_eq!(mon.errors(), 1);
    }

    #[test]
    fn per_block_cost_exceeds_nothing_but_accumulates() {
        let prog = CfcssProgram::instrument(ControlFlowGraph::chain(4), 5);
        let mut mon = CfcssMonitor::new(prog, b(0));
        let mut costs = CostMeter::new();
        for i in [1u32, 2, 3, 0, 1, 2, 3, 0] {
            mon.enter(b(i), &mut costs);
        }
        assert_eq!(costs.total_cycles(), 8 * BLOCK_CHECK_COST_CYCLES);
        assert_eq!(costs.operations(), 8);
    }

    #[test]
    fn fan_in_blocks_are_identified() {
        let prog = CfcssProgram::instrument(diamond(), 6);
        assert_eq!(prog.fan_in_count(), 1);
        let chain = CfcssProgram::instrument(ControlFlowGraph::chain(5), 6);
        assert_eq!(chain.fan_in_count(), 0);
    }

    #[test]
    fn signatures_are_unique() {
        let prog = CfcssProgram::instrument(ControlFlowGraph::chain(64), 7);
        let mut sigs: Vec<u32> = (0..64).map(|i| prog.signature(b(i))).collect();
        sigs.sort_unstable();
        sigs.dedup();
        assert_eq!(sigs.len(), 64);
    }

    #[test]
    #[should_panic(expected = "unknown target block")]
    fn edge_to_unknown_block_rejected() {
        let mut g = ControlFlowGraph::new(2);
        g.add_edge(b(0), b(5));
    }
}

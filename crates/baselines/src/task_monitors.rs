//! Task-granularity timing monitors: OSEKTime deadline monitoring and
//! AUTOSAR OS execution-time monitoring.
//!
//! Both are the related-work comparators of the paper's §2: "Deadline
//! monitoring of the OSEKTime operating system and execution time
//! monitoring of AUTOSAR OS introduce the time monitoring of tasks, but the
//! granularity of fault detection on the layer of tasks is not fine enough
//! for runnables." The OSEK kernel already detects both conditions exactly
//! (per-task deadlines and budgets); these observers collect the events
//! into per-task statistics that the coverage experiments read out.

use easis_osek::hooks::{HookEvent, HookObserver};
use easis_osek::task::TaskId;
use easis_sim::time::Instant;
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

/// Statistics collected by a task-granularity monitor.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TaskMonitorStats {
    detections: BTreeMap<TaskId, u32>,
    first_detection: Option<(TaskId, Instant)>,
}

impl TaskMonitorStats {
    /// Detections attributed to `task`.
    pub fn detections_of(&self, task: TaskId) -> u32 {
        self.detections.get(&task).copied().unwrap_or(0)
    }

    /// Total detections across tasks.
    pub fn total(&self) -> u32 {
        self.detections.values().sum()
    }

    /// Earliest detection, if any.
    pub fn first_detection(&self) -> Option<(TaskId, Instant)> {
        self.first_detection
    }

    fn record(&mut self, task: TaskId, at: Instant) {
        *self.detections.entry(task).or_insert(0) += 1;
        if self.first_detection.is_none() {
            self.first_detection = Some((task, at));
        }
    }
}

/// Shared handle to a monitor's statistics.
pub type StatsHandle = Arc<Mutex<TaskMonitorStats>>;

/// OSEKTime-style deadline monitor: counts kernel deadline-miss events.
#[derive(Debug, Clone, Default)]
pub struct DeadlineMonitor {
    stats: StatsHandle,
}

impl DeadlineMonitor {
    /// Creates the monitor; subscribe the value with `Os::add_observer`
    /// (it is `Clone`, keep one copy for reading).
    pub fn new() -> Self {
        DeadlineMonitor::default()
    }

    /// Read access to the collected statistics.
    pub fn stats(&self) -> TaskMonitorStats {
        self.stats.lock().expect("stats lock").clone()
    }

    /// Clears the collected statistics in every clone of this monitor
    /// (world pooling support).
    pub fn reset(&self) {
        *self.stats.lock().expect("stats lock") = TaskMonitorStats::default();
    }

    /// Overwrites the statistics in every clone of this monitor with a
    /// previously captured snapshot ([`DeadlineMonitor::stats`] is the
    /// capture half — campaign checkpoint support).
    pub fn restore_stats(&self, stats: &TaskMonitorStats) {
        self.stats.lock().expect("stats lock").clone_from(stats);
    }

    /// Total detections without cloning the map (detections only ever
    /// increment, so an unchanged total proves the whole statistics
    /// unchanged — the macro-stepping engine's allocation-free check).
    pub fn total(&self) -> u32 {
        self.stats.lock().expect("stats lock").total()
    }

    /// Earliest detection without cloning the map.
    pub fn first_detection(&self) -> Option<(TaskId, Instant)> {
        self.stats.lock().expect("stats lock").first_detection()
    }
}

impl<W> HookObserver<W> for DeadlineMonitor {
    fn on_hook(&mut self, now: Instant, event: HookEvent, _world: &mut W) {
        if let HookEvent::DeadlineMiss { task, .. } = event {
            self.stats.lock().expect("stats lock").record(task, now);
        }
    }
}

/// AUTOSAR-OS-style execution-time monitor: counts budget-exceeded events.
#[derive(Debug, Clone, Default)]
pub struct ExecutionTimeMonitor {
    stats: StatsHandle,
}

impl ExecutionTimeMonitor {
    /// Creates the monitor (see [`DeadlineMonitor::new`] for the usage
    /// pattern).
    pub fn new() -> Self {
        ExecutionTimeMonitor::default()
    }

    /// Read access to the collected statistics.
    pub fn stats(&self) -> TaskMonitorStats {
        self.stats.lock().expect("stats lock").clone()
    }

    /// Clears the collected statistics in every clone of this monitor
    /// (world pooling support).
    pub fn reset(&self) {
        *self.stats.lock().expect("stats lock") = TaskMonitorStats::default();
    }

    /// Overwrites the statistics in every clone of this monitor with a
    /// previously captured snapshot ([`ExecutionTimeMonitor::stats`] is
    /// the capture half — campaign checkpoint support).
    pub fn restore_stats(&self, stats: &TaskMonitorStats) {
        self.stats.lock().expect("stats lock").clone_from(stats);
    }

    /// Total detections without cloning the map (see
    /// [`DeadlineMonitor::total`]).
    pub fn total(&self) -> u32 {
        self.stats.lock().expect("stats lock").total()
    }

    /// Earliest detection without cloning the map.
    pub fn first_detection(&self) -> Option<(TaskId, Instant)> {
        self.stats.lock().expect("stats lock").first_detection()
    }
}

impl<W> HookObserver<W> for ExecutionTimeMonitor {
    fn on_hook(&mut self, now: Instant, event: HookEvent, _world: &mut W) {
        if let HookEvent::BudgetExceeded { task, .. } = event {
            self.stats.lock().expect("stats lock").record(task, now);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use easis_osek::alarm::AlarmAction;
    use easis_osek::kernel::Os;
    use easis_osek::plan::Plan;
    use easis_osek::task::{Priority, TaskConfig};
    use easis_sim::time::Duration;

    fn ms(n: u64) -> Duration {
        Duration::from_millis(n)
    }

    #[test]
    fn deadline_monitor_counts_kernel_misses() {
        let mut os: Os<()> = Os::new();
        let t = os.add_task(
            TaskConfig::new("slow", Priority(1)).with_deadline(ms(5)),
            |_, _: &()| Plan::new().compute(ms(8)),
        );
        let a = os.add_alarm("a", AlarmAction::ActivateTask(t));
        let monitor = DeadlineMonitor::new();
        os.add_observer(monitor.clone());
        let mut w = ();
        os.start(&mut w);
        os.set_rel_alarm(a, ms(1), Some(ms(20))).unwrap();
        os.run_until(Instant::from_millis(50), &mut w);
        let stats = monitor.stats();
        assert_eq!(stats.detections_of(t), 3);
        assert_eq!(stats.total(), 3);
        let (task, at) = stats.first_detection().unwrap();
        assert_eq!(task, t);
        assert_eq!(at, Instant::from_millis(6));
    }

    #[test]
    fn execution_monitor_counts_budget_overruns() {
        let mut os: Os<()> = Os::new();
        let t = os.add_task(
            TaskConfig::new("hog", Priority(1)).with_execution_budget(ms(2)),
            |_, _: &()| Plan::new().compute(ms(4)),
        );
        let monitor = ExecutionTimeMonitor::new();
        os.add_observer(monitor.clone());
        let mut w = ();
        os.start(&mut w);
        os.activate_task(t, &mut w).unwrap();
        os.run_until(Instant::from_millis(10), &mut w);
        assert_eq!(monitor.stats().detections_of(t), 1);
    }

    #[test]
    fn monitors_stay_silent_on_healthy_tasks() {
        let mut os: Os<()> = Os::new();
        let t = os.add_task(
            TaskConfig::new("fine", Priority(1))
                .with_deadline(ms(10))
                .with_execution_budget(ms(10)),
            |_, _: &()| Plan::new().compute(ms(1)),
        );
        let dl = DeadlineMonitor::new();
        let et = ExecutionTimeMonitor::new();
        os.add_observer(dl.clone());
        os.add_observer(et.clone());
        let mut w = ();
        os.start(&mut w);
        os.activate_task(t, &mut w).unwrap();
        os.run_until(Instant::from_millis(30), &mut w);
        assert_eq!(dl.stats().total(), 0);
        assert_eq!(et.stats().total(), 0);
        assert!(dl.stats().first_detection().is_none());
    }
}

//! ECU hardware watchdog baseline.
//!
//! "A hardware watchdog treats the embedded software as a whole" (paper
//! §2): a free-running countdown that must be serviced ("kicked") before it
//! expires, usually from a low-priority task so that a hung system stops
//! kicking. It cannot attribute anything to a task or runnable — the
//! granularity gap the Software Watchdog closes. An optional *window* mode
//! (common in automotive supervisors) also rejects kicks that arrive too
//! early.

use easis_sim::time::{Duration, Instant};
use serde::{Deserialize, Serialize};

/// Outcome of a kick in window mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum KickOutcome {
    /// Kick accepted, countdown restarted.
    Accepted,
    /// Kick inside the closed window (too early) — counted as an error.
    TooEarly,
}

/// A countdown (optionally windowed) hardware watchdog model.
///
/// # Examples
///
/// ```
/// use easis_baselines::hw_watchdog::HardwareWatchdog;
/// use easis_sim::time::{Duration, Instant};
///
/// let mut wd = HardwareWatchdog::new(Duration::from_millis(50));
/// wd.kick(Instant::from_millis(10));
/// assert!(!wd.poll(Instant::from_millis(40)));  // still alive
/// assert!(wd.poll(Instant::from_millis(100)));  // expired
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HardwareWatchdog {
    timeout: Duration,
    /// Closed-window length for windowed operation (`ZERO` = plain timeout).
    window_closed: Duration,
    last_kick: Instant,
    expired: bool,
    expirations: u32,
    early_kicks: u32,
    first_expiry: Option<Instant>,
}

impl HardwareWatchdog {
    /// Creates a plain timeout watchdog.
    ///
    /// # Panics
    ///
    /// Panics if `timeout` is zero.
    pub fn new(timeout: Duration) -> Self {
        assert!(!timeout.is_zero(), "timeout must be positive");
        HardwareWatchdog {
            timeout,
            window_closed: Duration::ZERO,
            last_kick: Instant::ZERO,
            expired: false,
            expirations: 0,
            early_kicks: 0,
            first_expiry: None,
        }
    }

    /// Enables window mode: kicks earlier than `closed` after the previous
    /// kick are rejected and counted.
    pub fn with_window(mut self, closed: Duration) -> Self {
        assert!(
            closed < self.timeout,
            "closed window must be shorter than the timeout"
        );
        self.window_closed = closed;
        self
    }

    /// Services the watchdog.
    pub fn kick(&mut self, now: Instant) -> KickOutcome {
        self.poll(now);
        if !self.window_closed.is_zero()
            && now.saturating_duration_since(self.last_kick) < self.window_closed
        {
            self.early_kicks += 1;
            return KickOutcome::TooEarly;
        }
        self.last_kick = now;
        self.expired = false;
        KickOutcome::Accepted
    }

    /// Checks for expiry at `now`. Returns `true` while the watchdog is in
    /// the expired state (a real device would be asserting reset).
    pub fn poll(&mut self, now: Instant) -> bool {
        if !self.expired && now.saturating_duration_since(self.last_kick) > self.timeout {
            self.expired = true;
            self.expirations += 1;
            let expiry_at = self.last_kick + self.timeout;
            if self.first_expiry.is_none() {
                self.first_expiry = Some(expiry_at);
            }
        }
        self.expired
    }

    /// Resets the countdown and all statistics to the just-built state,
    /// keeping the timeout and window configuration (world pooling
    /// support).
    pub fn reset(&mut self) {
        self.last_kick = Instant::ZERO;
        self.expired = false;
        self.expirations = 0;
        self.early_kicks = 0;
        self.first_expiry = None;
    }

    /// Total expirations observed.
    pub fn expirations(&self) -> u32 {
        self.expirations
    }

    /// Rejected too-early kicks (window mode).
    pub fn early_kicks(&self) -> u32 {
        self.early_kicks
    }

    /// When the watchdog first expired, if ever.
    pub fn first_expiry(&self) -> Option<Instant> {
        self.first_expiry
    }

    /// Configured timeout.
    pub fn timeout(&self) -> Duration {
        self.timeout
    }

    /// Shifts the last-kick stamp forward by `by` — the closed-form
    /// application of a quiescent hyperperiod: a steadily kicked watchdog
    /// advances `last_kick` by exactly the hyperperiod while expiry state
    /// and statistics stay put (which the deriving engine verifies by
    /// comparing a shifted clone for full equality).
    pub fn shift_last_kick(&mut self, by: Duration) {
        self.last_kick += by;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> Instant {
        Instant::from_millis(ms)
    }

    #[test]
    fn regular_kicks_keep_it_quiet() {
        let mut wd = HardwareWatchdog::new(Duration::from_millis(50));
        for i in 1..=20 {
            assert_eq!(wd.kick(t(i * 20)), KickOutcome::Accepted);
            assert!(!wd.poll(t(i * 20)));
        }
        assert_eq!(wd.expirations(), 0);
    }

    #[test]
    fn missing_kicks_expire_exactly_after_timeout() {
        let mut wd = HardwareWatchdog::new(Duration::from_millis(50));
        wd.kick(t(10));
        assert!(!wd.poll(t(60))); // exactly at bound: not yet over
        assert!(wd.poll(t(61)));
        assert_eq!(wd.first_expiry(), Some(t(60)));
        assert_eq!(wd.expirations(), 1);
    }

    #[test]
    fn kick_clears_expired_state() {
        let mut wd = HardwareWatchdog::new(Duration::from_millis(10));
        assert!(wd.poll(t(100)));
        wd.kick(t(100));
        assert!(!wd.poll(t(105)));
        assert_eq!(wd.expirations(), 1);
    }

    #[test]
    fn expired_state_reported_once_per_episode() {
        let mut wd = HardwareWatchdog::new(Duration::from_millis(10));
        assert!(wd.poll(t(50)));
        assert!(wd.poll(t(60)));
        assert_eq!(wd.expirations(), 1);
    }

    #[test]
    fn window_mode_rejects_early_kicks() {
        let mut wd =
            HardwareWatchdog::new(Duration::from_millis(50)).with_window(Duration::from_millis(20));
        assert_eq!(wd.kick(t(30)), KickOutcome::Accepted);
        assert_eq!(wd.kick(t(35)), KickOutcome::TooEarly); // 5ms after last
        assert_eq!(wd.early_kicks(), 1);
        // The early kick did not restart the countdown.
        assert!(wd.poll(t(85)));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_timeout_rejected() {
        let _ = HardwareWatchdog::new(Duration::ZERO);
    }

    #[test]
    #[should_panic(expected = "shorter than the timeout")]
    fn window_longer_than_timeout_rejected() {
        let _ = HardwareWatchdog::new(Duration::from_millis(10))
            .with_window(Duration::from_millis(20));
    }
}

//! # easis-baselines — comparator monitors
//!
//! The related-work section of the reproduced paper (§2) names three
//! monitoring mechanisms that the Software Watchdog improves upon, plus one
//! control-flow-checking alternative it deliberately avoids. All four are
//! implemented here so the coverage/latency/overhead experiments can put
//! real numbers behind the paper's qualitative claims:
//!
//! * [`hw_watchdog`] — the ECU hardware watchdog ("treats the embedded
//!   software as a whole"), optionally windowed;
//! * [`task_monitors`] — OSEKTime deadline monitoring and AUTOSAR OS
//!   execution-time monitoring (task granularity, "not fine enough for
//!   runnables");
//! * [`cfcss`] — Control-Flow Checking by Software Signatures (Oh et al.,
//!   2002), the embedded-signature technique rejected for "high
//!   performance overhead and low flexibility".
//!
//! # Examples
//!
//! ```
//! use easis_baselines::cfcss::{BlockId, CfcssMonitor, CfcssProgram, ControlFlowGraph};
//! use easis_sim::cpu::CostMeter;
//!
//! let program = CfcssProgram::instrument(ControlFlowGraph::chain(4), 42);
//! let mut monitor = CfcssMonitor::new(program, BlockId(0));
//! let mut costs = CostMeter::new();
//! assert!(!monitor.enter(BlockId(1), &mut costs));     // legal edge
//! assert!(monitor.enter(BlockId(3), &mut costs));      // illegal jump
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cfcss;
pub mod hw_watchdog;
pub mod task_monitors;

pub use cfcss::{BlockId, CfcssMonitor, CfcssProgram, ControlFlowGraph};
pub use hw_watchdog::{HardwareWatchdog, KickOutcome};
pub use task_monitors::{DeadlineMonitor, ExecutionTimeMonitor, TaskMonitorStats};

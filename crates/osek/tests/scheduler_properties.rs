//! Property-based scheduler tests: random periodic task sets must uphold
//! the fixed-priority invariants regardless of parameters.

use easis_osek::alarm::AlarmAction;
use easis_osek::kernel::Os;
use easis_osek::plan::Plan;
use easis_osek::task::{Priority, TaskConfig};
use easis_sim::time::{Duration, Instant};
use proptest::prelude::*;

/// A generated periodic task: (priority, period_ms ∈ 2..=20, cost_us).
fn task_set() -> impl Strategy<Value = Vec<(u8, u64, u64)>> {
    prop::collection::vec(
        (0u8..8, 2u64..=20, 50u64..500),
        1..6,
    )
}

/// Builds the OS; the world counts completions per task.
fn build(tasks: &[(u8, u64, u64)]) -> (Os<Vec<u64>>, Vec<u64>) {
    let mut os: Os<Vec<u64>> = Os::with_disabled_trace();
    for (i, &(prio, _period, cost)) in tasks.iter().enumerate() {
        let t = os.add_task(
            TaskConfig::new(format!("t{i}"), Priority(prio)).with_max_activations(50),
            move |_: Instant, _: &Vec<u64>| {
                Plan::new()
                    .compute(Duration::from_micros(cost))
                    .effect(move |w: &mut Vec<u64>, _| w[i] += 1)
            },
        );
        os.add_alarm(format!("a{i}"), AlarmAction::ActivateTask(t));
    }
    let world = vec![0u64; tasks.len()];
    (os, world)
}

fn total_utilization(tasks: &[(u8, u64, u64)]) -> f64 {
    tasks
        .iter()
        .map(|&(_, p, c)| c as f64 / (p as f64 * 1000.0))
        .sum()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Busy time never exceeds elapsed time, and utilisation accounting is
    /// consistent with it.
    #[test]
    fn busy_time_is_bounded_by_elapsed(tasks in task_set()) {
        let (mut os, mut world) = build(&tasks);
        os.start(&mut world);
        for (i, &(_, period, _)) in tasks.iter().enumerate() {
            os.set_rel_alarm(
                easis_osek::alarm::AlarmId(i as u32),
                Duration::from_millis(period),
                Some(Duration::from_millis(period)),
            ).unwrap();
        }
        os.run_until(Instant::from_millis(300), &mut world);
        prop_assert!(os.busy_time() <= Duration::from_millis(300));
        prop_assert!(os.utilization() <= 1.0 + 1e-9);
    }

    /// Under total utilisation < 0.8 every activation completes: the
    /// completion count of each task matches its activation count.
    #[test]
    fn feasible_sets_complete_every_activation(tasks in task_set()) {
        prop_assume!(total_utilization(&tasks) < 0.8);
        let (mut os, mut world) = build(&tasks);
        os.start(&mut world);
        for (i, &(_, period, _)) in tasks.iter().enumerate() {
            os.set_rel_alarm(
                easis_osek::alarm::AlarmId(i as u32),
                Duration::from_millis(period),
                Some(Duration::from_millis(period)),
            ).unwrap();
        }
        // Run to a horizon plus slack so final activations can finish.
        os.run_until(Instant::from_millis(400), &mut world);
        os.run_until(Instant::from_millis(440), &mut world);
        for (i, &(_, period, _)) in tasks.iter().enumerate() {
            let expected = 400 / period; // activations issued by 400ms
            prop_assert!(
                world[i] >= expected,
                "task {i}: {} completions, expected ≥ {expected}",
                world[i]
            );
        }
    }

    /// Determinism: running the same set twice produces identical
    /// completion vectors.
    #[test]
    fn schedules_are_deterministic(tasks in task_set()) {
        let run = |tasks: &[(u8, u64, u64)]| {
            let (mut os, mut world) = build(tasks);
            os.start(&mut world);
            for (i, &(_, period, _)) in tasks.iter().enumerate() {
                os.set_rel_alarm(
                    easis_osek::alarm::AlarmId(i as u32),
                    Duration::from_millis(period),
                    Some(Duration::from_millis(period)),
                ).unwrap();
            }
            os.run_until(Instant::from_millis(250), &mut world);
            world
        };
        prop_assert_eq!(run(&tasks), run(&tasks));
    }

    /// Interference freedom: adding lower-priority tasks never reduces the
    /// completion count of the strictly highest-priority task.
    #[test]
    fn lower_priority_load_cannot_starve_higher(
        base_cost in 50u64..400,
        extra in prop::collection::vec((2u64..=20, 100u64..2_000), 0..4),
    ) {
        let run = |extra: &[(u64, u64)]| {
            let mut os: Os<u64> = Os::with_disabled_trace();
            let hi = os.add_task(
                TaskConfig::new("hi", Priority(9)).with_max_activations(50),
                move |_: Instant, _: &u64| {
                    Plan::new()
                        .compute(Duration::from_micros(base_cost))
                        .effect(|w, _| *w += 1)
                },
            );
            let a_hi = os.add_alarm("hi", AlarmAction::ActivateTask(hi));
            let mut alarms = Vec::new();
            for (i, &(period, cost)) in extra.iter().enumerate() {
                let t = os.add_task(
                    TaskConfig::new(format!("lo{i}"), Priority(1)).with_max_activations(50),
                    move |_: Instant, _: &u64| Plan::new().compute(Duration::from_micros(cost)),
                );
                alarms.push((os.add_alarm(format!("lo{i}"), AlarmAction::ActivateTask(t)), period));
            }
            let mut w = 0u64;
            os.start(&mut w);
            os.set_rel_alarm(a_hi, Duration::from_millis(5), Some(Duration::from_millis(5))).unwrap();
            for (a, period) in alarms {
                os.set_rel_alarm(a, Duration::from_millis(period), Some(Duration::from_millis(period))).unwrap();
            }
            os.run_until(Instant::from_millis(300), &mut w);
            w
        };
        let alone = run(&[]);
        let contended = run(&extra);
        prop_assert_eq!(alone, contended, "high-priority completions changed under low load");
    }
}

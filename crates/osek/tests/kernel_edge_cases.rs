//! Edge cases of the kernel's OSEK service semantics, exercised through
//! the public API.

use easis_osek::alarm::AlarmAction;
use easis_osek::error::OsError;
use easis_osek::kernel::Os;
use easis_osek::plan::{Plan, Step};
use easis_osek::task::{EventMask, Priority, TaskConfig, TaskKind, TaskState};
use easis_sim::time::{Duration, Instant};

fn ms(n: u64) -> Duration {
    Duration::from_millis(n)
}

#[test]
fn chain_task_to_itself_reruns_immediately() {
    let mut os: Os<u32> = Os::new();
    // The task chains to itself until the world counter reaches 3.
    let t = os.add_task(TaskConfig::new("self", Priority(1)), {
        move |_: Instant, w: &u32| {
            let mut plan = Plan::new()
                .compute(ms(1))
                .effect(|w: &mut u32, _| *w += 1);
            if *w < 2 {
                // Note: the chain target id equals this task's own id (0).
                plan = plan.step(Step::ChainTask(easis_osek::task::TaskId(0)));
            }
            plan
        }
    });
    let mut w = 0u32;
    os.start(&mut w);
    os.activate_task(t, &mut w).unwrap();
    os.run_until(Instant::from_millis(20), &mut w);
    assert_eq!(w, 3); // initial + two chains
    assert_eq!(os.task_state(t).unwrap(), TaskState::Suspended);
}

#[test]
fn wait_event_wakes_on_any_of_multiple_bits() {
    let mut os: Os<Vec<u8>> = Os::new();
    let waiter = os.add_task(
        TaskConfig::new("waiter", Priority(2))
            .with_kind(TaskKind::Extended)
            .autostart(),
        |_: Instant, _: &Vec<u8>| {
            Plan::new()
                .step(Step::WaitEvent(EventMask::bit(0).union(EventMask::bit(3))))
                .effect(|w: &mut Vec<u8>, _| w.push(1))
        },
    );
    let a = os.add_alarm("wake", AlarmAction::SetEvent(waiter, EventMask::bit(3)));
    let mut w = Vec::new();
    os.start(&mut w);
    os.set_rel_alarm(a, ms(5), None).unwrap();
    os.run_until(Instant::from_millis(10), &mut w);
    assert_eq!(w, vec![1], "bit 3 alone must wake a waiter on bits {{0,3}}");
}

#[test]
fn clear_event_prevents_stale_wakeups() {
    let mut os: Os<Vec<u8>> = Os::new();
    let waiter = os.add_task(
        TaskConfig::new("waiter", Priority(2))
            .with_kind(TaskKind::Extended)
            .autostart(),
        |_: Instant, _: &Vec<u8>| {
            Plan::new()
                .step(Step::WaitEvent(EventMask::bit(0)))
                .effect(|w: &mut Vec<u8>, _| w.push(1))
                .step(Step::ClearEvent(EventMask::bit(0)))
                // Second wait: the cleared bit must block again.
                .step(Step::WaitEvent(EventMask::bit(0)))
                .effect(|w: &mut Vec<u8>, _| w.push(2))
        },
    );
    let a = os.add_alarm("wake", AlarmAction::SetEvent(waiter, EventMask::bit(0)));
    let mut w = Vec::new();
    os.start(&mut w);
    os.set_rel_alarm(a, ms(5), None).unwrap();
    os.run_until(Instant::from_millis(20), &mut w);
    // Only the first wait was satisfied; the second blocks forever.
    assert_eq!(w, vec![1]);
    assert_eq!(os.task_state(waiter).unwrap(), TaskState::Waiting);
}

#[test]
fn set_event_on_suspended_task_is_a_state_error() {
    let mut os: Os<()> = Os::new();
    let t = os.add_task(
        TaskConfig::new("ext", Priority(1)).with_kind(TaskKind::Extended),
        |_: Instant, _: &()| Plan::new(),
    );
    let mut w = ();
    os.start(&mut w);
    assert_eq!(
        os.set_event(t, EventMask::bit(0), &mut w),
        Err(OsError::InvalidState)
    );
}

#[test]
fn one_shot_alarm_can_be_rearmed_after_firing() {
    let mut os: Os<u32> = Os::new();
    let t = os.add_task(TaskConfig::new("t", Priority(1)), |_: Instant, _: &u32| {
        Plan::new().effect(|w: &mut u32, _| *w += 1)
    });
    let a = os.add_alarm("once", AlarmAction::ActivateTask(t));
    let mut w = 0u32;
    os.start(&mut w);
    os.set_rel_alarm(a, ms(5), None).unwrap();
    os.run_until(Instant::from_millis(10), &mut w);
    assert_eq!(w, 1);
    // After expiry the alarm is free again.
    os.set_rel_alarm(a, ms(5), None).unwrap();
    os.run_until(Instant::from_millis(20), &mut w);
    assert_eq!(w, 2);
}

#[test]
fn idle_cpu_jumps_to_the_horizon() {
    let mut os: Os<()> = Os::new();
    let mut w = ();
    os.start(&mut w);
    os.run_until(Instant::from_millis(1_000), &mut w);
    assert_eq!(os.now(), Instant::from_millis(1_000));
    assert_eq!(os.busy_time(), Duration::ZERO);
    assert_eq!(os.utilization(), 0.0);
}

#[test]
fn activation_during_execution_queues_a_back_to_back_rerun() {
    let mut os: Os<u32> = Os::new();
    let t = os.add_task(
        TaskConfig::new("t", Priority(1)).with_max_activations(2),
        |_: Instant, _: &u32| {
            Plan::new()
                .compute(ms(3))
                .effect(|w: &mut u32, _| *w += 1)
        },
    );
    let mut w = 0u32;
    os.start(&mut w);
    os.activate_task(t, &mut w).unwrap();
    os.run_until(Instant::from_millis(1), &mut w);
    // Mid-execution re-activation queues a second run.
    os.activate_task(t, &mut w).unwrap();
    os.run_until(Instant::from_millis(10), &mut w);
    assert_eq!(w, 2);
    // Effects landed back to back at 3ms and 6ms.
    let runs: Vec<u64> = os
        .trace()
        .of_kind("terminate")
        .map(|e| e.at.as_millis())
        .collect();
    assert_eq!(runs, vec![3, 6]);
}

#[test]
fn activating_an_invalid_task_id_fails_cleanly() {
    let mut os: Os<()> = Os::new();
    let mut w = ();
    os.start(&mut w);
    assert_eq!(
        os.activate_task(easis_osek::task::TaskId(42), &mut w),
        Err(OsError::InvalidId)
    );
}

#[test]
fn run_until_same_instant_is_a_noop() {
    let mut os: Os<()> = Os::new();
    let mut w = ();
    os.start(&mut w);
    os.run_until(Instant::from_millis(5), &mut w);
    os.run_until(Instant::from_millis(5), &mut w);
    assert_eq!(os.now(), Instant::from_millis(5));
}

#[test]
fn isr_during_idle_runs_at_trigger_time() {
    let mut os: Os<Vec<u64>> = Os::new();
    let isr = os.add_isr("rx", Duration::from_micros(20), |w: &mut Vec<u64>, ctx| {
        w.push(ctx.now().as_micros())
    });
    let mut w = Vec::new();
    os.start(&mut w);
    os.run_until(Instant::from_millis(3), &mut w);
    os.trigger_isr(isr, &mut w).unwrap();
    os.run_until(Instant::from_millis(5), &mut w);
    assert_eq!(w, vec![3_020]);
}

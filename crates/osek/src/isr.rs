//! Category-2 interrupt service routines.
//!
//! OSEK category-2 ISRs may use OS services and are scheduled above every
//! task. The model reuses the kernel's task machinery: an ISR is a hidden
//! task at the reserved top priority ([`ISR_PRIORITY`]), activated by
//! external events (e.g. a bus controller signalling frame reception).
//! Because ISRs outrank all tasks and are non-preemptable by them, the
//! handler runs to completion before any task resumes — the OSEK ISR
//! contract.

use crate::kernel::Os;
use crate::plan::{EffectCtx, Plan};
use crate::task::{Priority, TaskConfig, TaskId};
use easis_sim::time::{Duration, Instant};
use std::fmt;

/// The reserved scheduling priority of ISRs (above every task priority a
/// well-formed configuration uses).
pub const ISR_PRIORITY: Priority = Priority(u8::MAX);

/// Identifier of a registered ISR.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct IsrId(TaskId);

impl IsrId {
    /// The hidden task backing this ISR.
    pub fn task(self) -> TaskId {
        self.0
    }
}

impl fmt::Display for IsrId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ISR({})", self.0)
    }
}

impl<W: 'static> Os<W> {
    /// Registers a category-2 ISR: `cost` of CPU time followed by the
    /// handler effect. Multiple pending triggers queue (up to 8).
    pub fn add_isr(
        &mut self,
        name: impl Into<String>,
        cost: Duration,
        handler: impl FnMut(&mut W, &mut EffectCtx<'_, W>) + Send + Clone + 'static,
    ) -> IsrId {
        let task = self.add_task(
            TaskConfig::new(name, ISR_PRIORITY)
                .non_preemptable()
                .with_max_activations(8),
            move |_now: Instant, _w: &W| {
                let mut h = handler.clone();
                Plan::new()
                    .compute(cost)
                    .effect(move |w: &mut W, ctx| h(w, ctx))
            },
        );
        IsrId(task)
    }

    /// Raises the interrupt: the handler runs at the next scheduling
    /// decision, ahead of every task.
    ///
    /// # Errors
    ///
    /// Propagates the kernel's activation errors (e.g. more than 8 pending
    /// triggers).
    pub fn trigger_isr(&mut self, isr: IsrId, world: &mut W) -> Result<(), crate::error::OsError> {
        self.activate_task(isr.0, world)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alarm::AlarmAction;

    fn ms(n: u64) -> Duration {
        Duration::from_millis(n)
    }

    #[test]
    fn isr_preempts_running_task() {
        let mut os: Os<Vec<String>> = Os::new();
        let task = os.add_task(
            TaskConfig::new("worker", Priority(5)),
            |_: Instant, _: &Vec<String>| {
                Plan::new()
                    .compute(ms(10))
                    .effect(|w: &mut Vec<String>, ctx| {
                        w.push(format!("task@{}", ctx.now().as_micros()))
                    })
            },
        );
        let isr = os.add_isr("rx", Duration::from_micros(50), |w: &mut Vec<String>, ctx| {
            w.push(format!("isr@{}", ctx.now().as_micros()));
        });
        let a = os.add_alarm("start", AlarmAction::ActivateTask(task));
        let mut w = Vec::new();
        os.start(&mut w);
        os.set_rel_alarm(a, ms(1), None).unwrap();
        // Run into the middle of the task's computation, then interrupt.
        os.run_until(Instant::from_millis(5), &mut w);
        os.trigger_isr(isr, &mut w).unwrap();
        os.run_until(Instant::from_millis(20), &mut w);
        // The ISR ran immediately (at 5ms + 50us), the task finished 50us
        // late (at 11ms + 50us).
        assert_eq!(
            w,
            vec!["isr@5050".to_string(), "task@11050".to_string()]
        );
    }

    #[test]
    fn pending_triggers_queue_and_all_run() {
        let mut os: Os<u32> = Os::new();
        let isr = os.add_isr("rx", Duration::from_micros(10), |w: &mut u32, _| *w += 1);
        let mut w = 0u32;
        os.start(&mut w);
        for _ in 0..5 {
            os.trigger_isr(isr, &mut w).unwrap();
        }
        os.run_until(Instant::from_millis(1), &mut w);
        assert_eq!(w, 5);
    }

    #[test]
    fn trigger_overflow_reports_activation_limit() {
        let mut os: Os<u32> = Os::new();
        let isr = os.add_isr("rx", Duration::from_micros(10), |_: &mut u32, _| {});
        let mut w = 0u32;
        os.start(&mut w);
        for _ in 0..8 {
            os.trigger_isr(isr, &mut w).unwrap();
        }
        assert!(os.trigger_isr(isr, &mut w).is_err());
    }

    #[test]
    fn isr_outranks_every_task_priority() {
        let mut os: Os<Vec<&'static str>> = Os::new();
        let hi = os.add_task(
            TaskConfig::new("hi", Priority(254)),
            |_: Instant, _: &Vec<&'static str>| {
                Plan::new()
                    .compute(ms(1))
                    .effect(|w: &mut Vec<&'static str>, _| w.push("task"))
            },
        );
        let isr = os.add_isr("rx", Duration::from_micros(10), |w: &mut Vec<&'static str>, _| {
            w.push("isr")
        });
        let mut w = Vec::new();
        os.start(&mut w);
        os.activate_task(hi, &mut w).unwrap();
        os.trigger_isr(isr, &mut w).unwrap();
        os.run_until(Instant::from_millis(5), &mut w);
        assert_eq!(w, vec!["isr", "task"]);
    }
}

//! OS hooks.
//!
//! OSEK defines hook routines called by the OS at notable points
//! (startup, task switches, errors). The EASIS platform hangs its
//! task-granularity monitors off these hooks: the hardware-watchdog and
//! deadline-monitor baselines subscribe here, and the Software Watchdog's
//! task state indication consumes task-switch notifications.

use crate::error::OsError;
use crate::task::TaskId;
use easis_sim::time::{Duration, Instant};
use std::fmt;

/// A notification delivered to hook subscribers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HookEvent {
    /// OS finished starting up.
    Startup,
    /// A task entered the running state (`PreTaskHook`).
    PreTask(TaskId),
    /// A task left the running state (`PostTaskHook`).
    PostTask(TaskId),
    /// A task was activated (entered ready from suspended, or queued).
    Activate(TaskId),
    /// A task terminated.
    Terminate(TaskId),
    /// A system service failed (`ErrorHook`).
    Error(OsError),
    /// OSEKTime-style deadline miss: the activation that started at the
    /// given instant did not finish within the task's deadline.
    DeadlineMiss {
        /// The late task.
        task: TaskId,
        /// When the missed activation was released.
        activated_at: Instant,
    },
    /// AUTOSAR-OS-style timing protection: the running task exhausted its
    /// execution budget.
    BudgetExceeded {
        /// The overrunning task.
        task: TaskId,
        /// The configured budget.
        budget: Duration,
    },
    /// The OS was shut down.
    Shutdown,
}

impl fmt::Display for HookEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HookEvent::Startup => write!(f, "startup"),
            HookEvent::PreTask(t) => write!(f, "pre-task {t}"),
            HookEvent::PostTask(t) => write!(f, "post-task {t}"),
            HookEvent::Activate(t) => write!(f, "activate {t}"),
            HookEvent::Terminate(t) => write!(f, "terminate {t}"),
            HookEvent::Error(e) => write!(f, "error: {e}"),
            HookEvent::DeadlineMiss { task, activated_at } => {
                write!(f, "deadline miss {task} (activated {activated_at})")
            }
            HookEvent::BudgetExceeded { task, budget } => {
                write!(f, "budget exceeded {task} (budget {budget})")
            }
            HookEvent::Shutdown => write!(f, "shutdown"),
        }
    }
}

/// A hook subscriber. Receives every [`HookEvent`] with its timestamp and
/// mutable access to the shared world `W`.
pub trait HookObserver<W>: Send {
    /// Called by the kernel for every hook event.
    fn on_hook(&mut self, now: Instant, event: HookEvent, world: &mut W);
}

impl<W, F> HookObserver<W> for F
where
    F: FnMut(Instant, HookEvent, &mut W) + Send,
{
    fn on_hook(&mut self, now: Instant, event: HookEvent, world: &mut W) {
        self(now, event, world)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_covers_variants() {
        assert_eq!(HookEvent::PreTask(TaskId(1)).to_string(), "pre-task T1");
        assert!(HookEvent::Error(OsError::InvalidId).to_string().contains("E_OS_ID"));
        let miss = HookEvent::DeadlineMiss {
            task: TaskId(2),
            activated_at: Instant::from_millis(5),
        };
        assert!(miss.to_string().contains("deadline miss T2"));
    }

    #[test]
    fn closures_are_observers() {
        let mut seen = Vec::new();
        {
            let mut obs = |_: Instant, e: HookEvent, w: &mut Vec<HookEvent>| w.push(e);
            obs.on_hook(Instant::ZERO, HookEvent::Startup, &mut seen);
        }
        assert_eq!(seen, vec![HookEvent::Startup]);
    }
}

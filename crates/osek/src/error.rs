//! OSEK status codes.
//!
//! OSEK/VDX system services return a `StatusType`; we model the subset the
//! platform uses as a proper Rust error enum. Names follow the OSEK OS
//! specification 2.2.3 (`E_OS_*`).

use serde::{Deserialize, Serialize};
use std::error::Error;
use std::fmt;

/// Errors returned by OSEK system services.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OsError {
    /// `E_OS_ID` — a service was called with an invalid object identifier.
    InvalidId,
    /// `E_OS_LIMIT` — too many pending activations of a task.
    ActivationLimit,
    /// `E_OS_STATE` — the object is in an incompatible state (e.g. chaining
    /// from a suspended task).
    InvalidState,
    /// `E_OS_ACCESS` — an extended-task service was called on a basic task.
    InvalidAccess,
    /// `E_OS_RESOURCE` — resource ordering violated (release out of LIFO
    /// order, or occupied resource at task termination).
    ResourceOrder,
    /// `E_OS_NOFUNC` — alarm is not in use.
    AlarmNotInUse,
    /// `E_OS_VALUE` — alarm cycle/offset outside the counter's limits.
    InvalidValue,
}

impl fmt::Display for OsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let text = match self {
            OsError::InvalidId => "invalid object identifier (E_OS_ID)",
            OsError::ActivationLimit => "too many pending task activations (E_OS_LIMIT)",
            OsError::InvalidState => "object in incompatible state (E_OS_STATE)",
            OsError::InvalidAccess => "service not allowed for this task type (E_OS_ACCESS)",
            OsError::ResourceOrder => "resource protocol violated (E_OS_RESOURCE)",
            OsError::AlarmNotInUse => "alarm not in use (E_OS_NOFUNC)",
            OsError::InvalidValue => "value outside counter limits (E_OS_VALUE)",
        };
        f.write_str(text)
    }
}

impl Error for OsError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_osek_code() {
        assert!(OsError::ActivationLimit.to_string().contains("E_OS_LIMIT"));
        assert!(OsError::InvalidId.to_string().contains("E_OS_ID"));
    }

    #[test]
    fn error_trait_is_implemented() {
        let e: Box<dyn Error> = Box::new(OsError::InvalidState);
        assert!(e.to_string().contains("E_OS_STATE"));
    }
}

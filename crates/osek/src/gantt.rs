//! Execution-trace Gantt rendering.
//!
//! Turns the kernel's dispatch/preempt/terminate trace into per-task ASCII
//! timelines — the poor man's trace analyzer view used when debugging
//! schedules and when presenting the validator's execution to humans.

use crate::kernel::TRACE_SOURCE;
use easis_sim::time::Instant;
use easis_sim::trace::TraceRecorder;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A closed running interval of one task.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunInterval {
    /// Dispatch time.
    pub from: Instant,
    /// End of the slice (preemption, wait, yield or termination).
    pub to: Instant,
}

/// Extracts per-task running intervals from a kernel trace. Slices still
/// open at the last trace event are closed at that event's time.
pub fn running_intervals(trace: &TraceRecorder) -> BTreeMap<String, Vec<RunInterval>> {
    let mut intervals: BTreeMap<String, Vec<RunInterval>> = BTreeMap::new();
    let mut open: BTreeMap<String, Instant> = BTreeMap::new();
    let mut last_at = Instant::ZERO;
    for event in trace.events() {
        if event.source != TRACE_SOURCE {
            continue;
        }
        last_at = event.at;
        match event.kind.as_str() {
            "dispatch" => {
                open.entry(event.detail.clone()).or_insert(event.at);
            }
            "preempt" | "terminate" | "wait" | "yield" => {
                if let Some(from) = open.remove(&event.detail) {
                    intervals
                        .entry(event.detail.clone())
                        .or_default()
                        .push(RunInterval { from, to: event.at });
                }
            }
            _ => {}
        }
    }
    for (task, from) in open {
        intervals
            .entry(task)
            .or_default()
            .push(RunInterval { from, to: last_at });
    }
    intervals
}

/// Renders the trace as a Gantt chart over `[from, to)`, one row per task,
/// `width` columns. A column is marked when the task ran during any part
/// of that bucket.
pub fn render_gantt(trace: &TraceRecorder, from: Instant, to: Instant, width: usize) -> String {
    let width = width.max(10);
    let mut out = String::new();
    if to <= from {
        return out;
    }
    let span = to.as_micros() - from.as_micros();
    let intervals = running_intervals(trace);
    let name_width = intervals.keys().map(String::len).max().unwrap_or(4).max(4);
    for (task, runs) in &intervals {
        let mut row = vec!['·'; width];
        for run in runs {
            if run.to <= from || run.from >= to {
                continue;
            }
            let a = run.from.as_micros().max(from.as_micros()) - from.as_micros();
            let b = run.to.as_micros().min(to.as_micros()) - from.as_micros();
            let col_a = (a as u128 * width as u128 / span as u128) as usize;
            let col_b = (b as u128 * width as u128 / span as u128) as usize;
            for c in row.iter_mut().take((col_b + 1).min(width)).skip(col_a) {
                *c = '█';
            }
        }
        let _ = writeln!(out, "{task:>name_width$} |{}|", row.into_iter().collect::<String>());
    }
    let _ = writeln!(
        out,
        "{:>name_width$}  {}us{}{}us",
        "",
        from.as_micros(),
        " ".repeat(width.saturating_sub(12)),
        to.as_micros()
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alarm::AlarmAction;
    use crate::kernel::Os;
    use crate::plan::Plan;
    use crate::task::{Priority, TaskConfig};
    use easis_sim::time::Duration;

    fn ms(n: u64) -> Duration {
        Duration::from_millis(n)
    }

    fn demo_os() -> Os<()> {
        let mut os: Os<()> = Os::new();
        let lo = os.add_task(TaskConfig::new("lo", Priority(1)), |_, _: &()| {
            Plan::new().compute(ms(8))
        });
        let hi = os.add_task(TaskConfig::new("hi", Priority(5)), |_, _: &()| {
            Plan::new().compute(ms(2))
        });
        let a_lo = os.add_alarm("alo", AlarmAction::ActivateTask(lo));
        let a_hi = os.add_alarm("ahi", AlarmAction::ActivateTask(hi));
        let mut w = ();
        os.start(&mut w);
        os.set_rel_alarm(a_lo, ms(1), None).unwrap();
        os.set_rel_alarm(a_hi, ms(4), None).unwrap();
        os.run_until(Instant::from_millis(15), &mut w);
        os
    }

    #[test]
    fn intervals_cover_preemption_correctly() {
        let os = demo_os();
        let intervals = running_intervals(os.trace());
        // lo: 1–4 (preempted), 6–11. hi: 4–6.
        assert_eq!(
            intervals["lo"],
            vec![
                RunInterval { from: Instant::from_millis(1), to: Instant::from_millis(4) },
                RunInterval { from: Instant::from_millis(6), to: Instant::from_millis(11) },
            ]
        );
        assert_eq!(
            intervals["hi"],
            vec![RunInterval { from: Instant::from_millis(4), to: Instant::from_millis(6) }]
        );
    }

    #[test]
    fn gantt_marks_running_buckets() {
        let os = demo_os();
        let chart = render_gantt(os.trace(), Instant::ZERO, Instant::from_millis(15), 30);
        let lo_row = chart.lines().find(|l| l.trim_start().starts_with("lo")).unwrap();
        let hi_row = chart.lines().find(|l| l.trim_start().starts_with("hi")).unwrap();
        assert!(lo_row.contains('█'));
        assert!(hi_row.contains('█'));
        // hi runs strictly inside lo's window: its marks are fewer.
        let count = |row: &str| row.chars().filter(|&c| c == '█').count();
        assert!(count(hi_row) < count(lo_row));
    }

    #[test]
    fn open_slices_are_closed_at_the_last_event() {
        let mut os: Os<()> = Os::new();
        let t = os.add_task(TaskConfig::new("t", Priority(1)), |_, _: &()| {
            Plan::new().compute(ms(100))
        });
        let mut w = ();
        os.start(&mut w);
        os.activate_task(t, &mut w).unwrap();
        os.run_until(Instant::from_millis(10), &mut w);
        // The task is still mid-compute; the interval ends at the last
        // recorded event (its dispatch) rather than panicking.
        let intervals = running_intervals(os.trace());
        assert_eq!(intervals["t"].len(), 1);
    }

    #[test]
    fn degenerate_ranges_render_empty() {
        let os = demo_os();
        let chart = render_gantt(os.trace(), Instant::from_millis(5), Instant::from_millis(5), 20);
        assert!(chart.is_empty());
    }
}

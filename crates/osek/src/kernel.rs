//! The OS kernel: fixed-priority preemptive scheduling over simulated time.
//!
//! [`Os`] owns the task, alarm and resource tables and executes task plans
//! under OSEK full-preemptive scheduling semantics:
//!
//! * the highest-priority ready task runs; equal priorities are FIFO and a
//!   preempted task re-enters its priority queue at the *front* (OSEK spec);
//! * non-preemptable tasks yield only at termination or `WaitEvent`;
//! * resources follow the priority-ceiling protocol;
//! * cyclic alarms re-arm with their (possibly injector-scaled) cycle;
//! * optional per-task deadlines (OSEKTime) and execution budgets
//!   (AUTOSAR OS timing protection) are detected exactly and reported
//!   through hooks and the trace.
//!
//! Execution is deterministic: ties on the event queue break by insertion
//! order and the scheduler state machine contains no hidden randomness.
//!
//! # Split-borrow ownership
//!
//! [`Os`] is factored into three disjoint parts: the task *bodies*, the
//! per-task plan *arena*, and the scheduler *core* (TCB metadata, alarms,
//! resources, timer queue, ready queue, trace). Because the parts are
//! separate fields, dispatch borrows them simultaneously without moving
//! anything: planning calls [`TaskBody::plan_into`] on the body **in
//! place** while the arena slot and the core's clock are borrowed
//! alongside, and [`Step::EffectRef`] execution hands
//! [`TaskBody::run_effect`] a [`KernelServices`] view of the core so
//! effects call `ActivateTask`/`SetEvent`/`CancelAlarm` **directly and
//! synchronously** — no `Option::take`/restore of the body, no deferred
//! request queue on the hot path.

use crate::alarm::{Alarm, AlarmAction, AlarmId, AlarmRuntime};
use crate::error::OsError;
use crate::hooks::{HookEvent, HookObserver};
use crate::plan::{
    EffectCtx, KernelServices, PlanArena, PlanArenaSnapshot, ResourceId, ServiceCore, Step,
    TaskBody,
};
use crate::resource::{HeldResources, Resource};
use crate::task::{EventMask, Priority, TaskConfig, TaskId, TaskKind, TaskState};
use easis_sim::event::{EventQueue, EventQueueSnapshot};
use easis_sim::snap::{next_snapshot_id, RestoreStats};
use easis_sim::time::{Duration, Instant};
use easis_sim::trace::TraceRecorder;
use std::collections::VecDeque;

/// Trace source tag used by the kernel.
pub const TRACE_SOURCE: &str = "osek";

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum KernelEvent {
    AlarmExpiry(AlarmId),
    DeadlineCheck { task: TaskId, seq: u64 },
}

/// Task control block *metadata* — everything the scheduler needs to make
/// decisions. The body itself lives in `Os::bodies` (same index), outside
/// the core, so an executing effect can borrow its body mutably while the
/// core stays independently borrowable as its service view.
struct Tcb {
    config: TaskConfig,
    state: TaskState,
    /// `true` once the current activation's plan has been filled into the
    /// kernel's [`PlanArena`] slot (cleared at termination/reset).
    planned: bool,
    current_priority: Priority,
    set_events: EventMask,
    waiting_for: EventMask,
    held: HeldResources,
    /// Activations issued / completed (monotonic counters); the difference
    /// is the queue depth including the current instance.
    issued: u64,
    completed: u64,
    /// Execution time consumed by the current activation.
    exec_time: Duration,
    budget_reported: bool,
    /// Ordering key within a priority band: lower runs first. Preempted
    /// tasks receive keys below all waiting ones (front of the band).
    ready_key: i64,
}

impl Tcb {
    fn queued(&self) -> u64 {
        self.issued - self.completed
    }
}

/// Ready queue with O(1) highest-priority dispatch: a 256-bit occupancy
/// bitmap (one bit per [`Priority`] level, found via a leading-zero count)
/// over per-priority FIFO rings of `(ready_key, TaskId)`.
///
/// Invariants relied on by the kernel: a task enters only when transitioning
/// *to* `Ready` (never while already queued), leaves only at dispatch, and a
/// queued task's `current_priority` never changes (only the running task
/// takes or releases resources). Front insertions carry strictly decreasing
/// negative keys and back insertions strictly increasing positive ones, so
/// each ring stays sorted ascending by key and the band minimum is its front.
#[derive(Debug, Default)]
struct ReadyQueue {
    /// Bit `p` of word `p / 64` set ⇔ band `p` non-empty.
    bits: [u64; 4],
    /// One ring per priority band, grown on demand.
    bands: Vec<VecDeque<(i64, TaskId)>>,
}

impl ReadyQueue {
    fn push(&mut self, priority: Priority, key: i64, id: TaskId, front: bool) {
        let p = priority.0 as usize;
        if self.bands.len() <= p {
            self.bands.resize_with(p + 1, VecDeque::new);
        }
        let band = &mut self.bands[p];
        let neighbour = if front { band.front() } else { band.back() };
        debug_assert!(
            neighbour.is_none_or(|&(k, _)| if front { key < k } else { key > k }),
            "ready keys keep bands sorted"
        );
        if front {
            band.push_front((key, id));
        } else {
            band.push_back((key, id));
        }
        self.bits[p / 64] |= 1u64 << (p % 64);
    }

    /// The best queued candidate `(priority, ready_key, id)`, if any.
    fn peek_best(&self) -> Option<(Priority, i64, TaskId)> {
        for (word_idx, &word) in self.bits.iter().enumerate().rev() {
            if word != 0 {
                let p = word_idx * 64 + (63 - word.leading_zeros() as usize);
                let &(key, id) = self.bands[p]
                    .front()
                    .expect("occupancy bitmap tracks non-empty bands");
                return Some((Priority(p as u8), key, id));
            }
        }
        None
    }

    /// Removes a queued task (located by its priority band and key).
    fn remove(&mut self, priority: Priority, key: i64, id: TaskId) {
        let p = priority.0 as usize;
        let band = &mut self.bands[p];
        let pos = band
            .iter()
            .position(|&(k, t)| k == key && t == id)
            .expect("ready task present in its band");
        band.remove(pos);
        if band.is_empty() {
            self.bits[p / 64] &= !(1u64 << (p % 64));
        }
    }

    fn clear(&mut self) {
        self.bits = [0; 4];
        for band in &mut self.bands {
            band.clear();
        }
    }
}

/// The scheduler core: every piece of kernel state *except* the task
/// bodies and the plan arena. Holding it as one field gives dispatch the
/// split borrow the effect path needs — `&mut Core<W>` (as the effect's
/// [`KernelServices`]) alongside `&mut` the executing body — and it is the
/// kernel-side implementation of [`ServiceCore`].
struct Core<W> {
    tasks: Vec<Tcb>,
    alarms: Vec<Alarm>,
    resources: Vec<Resource>,
    timers: EventQueue<KernelEvent>,
    now: Instant,
    running: Option<TaskId>,
    observers: Vec<Box<dyn HookObserver<W>>>,
    trace: TraceRecorder,
    started: bool,
    /// Monotone counters generating ready-queue ordering keys.
    next_back_key: i64,
    next_front_key: i64,
    /// Priority-bitmap ready queue mirroring every `Ready` task.
    ready: ReadyQueue,
    busy: Duration,
    /// Last-write epoch per TCB and per alarm, plus one stamp covering the
    /// whole resource-holder table; see `easis_sim::snap` for the protocol.
    task_stamps: Vec<u64>,
    alarm_stamps: Vec<u64>,
    resource_stamp: u64,
    /// Current write stamp, bumped at every snapshot/restore boundary.
    epoch: u64,
    /// Id of the snapshot this state was last captured to / restored from
    /// (0 = no lineage; restores then fall back to a full copy).
    derived_from: u64,
}

/// The OSEK operating system model, generic over the ECU world type `W`.
///
/// # Examples
///
/// ```
/// use easis_osek::kernel::Os;
/// use easis_osek::plan::Plan;
/// use easis_osek::task::{Priority, TaskConfig};
/// use easis_sim::time::{Duration, Instant};
///
/// let mut os: Os<u32> = Os::new();
/// let t = os.add_task(
///     TaskConfig::new("tick", Priority(1)),
///     |_now: Instant, _w: &u32| {
///         Plan::new()
///             .compute(Duration::from_micros(100))
///             .effect(|w, _ctx| *w += 1)
///     },
/// );
/// let alarm = os.add_alarm("tick10ms", easis_osek::alarm::AlarmAction::ActivateTask(t));
/// let mut world = 0u32;
/// os.start(&mut world);
/// os.set_rel_alarm(alarm, Duration::from_millis(10), Some(Duration::from_millis(10))).unwrap();
/// os.run_until(Instant::from_millis(102), &mut world);
/// assert_eq!(world, 10);
/// ```
pub struct Os<W> {
    /// Task bodies, indexed by task id — stored apart from the scheduler
    /// core so an effect can run on its body in place while holding the
    /// core as its [`KernelServices`] view.
    bodies: Vec<Box<dyn TaskBody<W>>>,
    /// Capacity-retained per-task plan buffers (slot `i` belongs to task
    /// `i`); cleared, never shrunk, across activations and resets.
    arena: PlanArena<W>,
    /// Scheduler state (TCBs, alarms, resources, timers, ready queue,
    /// trace) — the [`ServiceCore`] handed to effects.
    core: Core<W>,
}

impl<W> Default for Os<W> {
    fn default() -> Self {
        Self::new()
    }
}

impl<W> Os<W> {
    /// Creates an empty OS with tracing enabled.
    pub fn new() -> Self {
        Os {
            bodies: Vec::new(),
            arena: PlanArena::new(),
            core: Core {
                tasks: Vec::new(),
                alarms: Vec::new(),
                resources: Vec::new(),
                timers: EventQueue::new(),
                now: Instant::ZERO,
                running: None,
                observers: Vec::new(),
                trace: TraceRecorder::new(),
                started: false,
                next_back_key: 1,
                next_front_key: -1,
                ready: ReadyQueue::default(),
                busy: Duration::ZERO,
                task_stamps: Vec::new(),
                alarm_stamps: Vec::new(),
                resource_stamp: 0,
                epoch: 0,
                derived_from: 0,
            },
        }
    }

    /// Creates an OS whose trace recorder drops everything (for overhead
    /// benchmarking).
    pub fn with_disabled_trace() -> Self {
        let mut os = Self::new();
        os.core.trace = TraceRecorder::disabled();
        os
    }

    // ------------------------------------------------------------------
    // Configuration (pre-start)
    // ------------------------------------------------------------------

    /// Declares a task. Returns its id.
    pub fn add_task(&mut self, config: TaskConfig, body: impl TaskBody<W> + 'static) -> TaskId {
        let id = TaskId(self.core.tasks.len() as u32);
        let priority = config.priority();
        self.bodies.push(Box::new(body));
        self.core.tasks.push(Tcb {
            config,
            state: TaskState::Suspended,
            planned: false,
            current_priority: priority,
            set_events: EventMask::NONE,
            waiting_for: EventMask::NONE,
            held: HeldResources::new(),
            issued: 0,
            completed: 0,
            exec_time: Duration::ZERO,
            budget_reported: false,
            ready_key: 0,
        });
        self.core.task_stamps.push(self.core.epoch);
        self.arena.grow_to(self.core.tasks.len());
        id
    }

    /// Declares an alarm. Returns its id; arm it with [`Os::set_rel_alarm`].
    pub fn add_alarm(&mut self, name: impl Into<String>, action: AlarmAction) -> AlarmId {
        let id = AlarmId(self.core.alarms.len() as u32);
        self.core.alarms.push(Alarm::new(name, action));
        self.core.alarm_stamps.push(self.core.epoch);
        id
    }

    /// Declares a resource with the given ceiling priority. Returns its id.
    pub fn add_resource(&mut self, name: impl Into<String>, ceiling: Priority) -> ResourceId {
        let id = ResourceId(self.core.resources.len() as u32);
        self.core.resources.push(Resource::new(name, ceiling));
        self.core.resource_stamp = self.core.epoch;
        id
    }

    /// Subscribes a hook observer.
    pub fn add_observer(&mut self, observer: impl HookObserver<W> + 'static) {
        self.core.observers.push(Box::new(observer));
    }

    // ------------------------------------------------------------------
    // Introspection
    // ------------------------------------------------------------------

    /// Current simulated time.
    pub fn now(&self) -> Instant {
        self.core.now
    }

    /// The trace recorder.
    pub fn trace(&self) -> &TraceRecorder {
        &self.core.trace
    }

    /// Mutable access to the trace recorder (e.g. to clear between phases).
    pub fn trace_mut(&mut self) -> &mut TraceRecorder {
        &mut self.core.trace
    }

    /// Number of declared tasks.
    pub fn task_count(&self) -> usize {
        self.core.tasks.len()
    }

    /// State of a task.
    ///
    /// # Errors
    ///
    /// Returns [`OsError::InvalidId`] for an unknown id.
    pub fn task_state(&self, id: TaskId) -> Result<TaskState, OsError> {
        self.core
            .tasks
            .get(id.index())
            .map(|t| t.state)
            .ok_or(OsError::InvalidId)
    }

    /// Name of a task.
    ///
    /// # Errors
    ///
    /// Returns [`OsError::InvalidId`] for an unknown id.
    pub fn task_name(&self, id: TaskId) -> Result<&str, OsError> {
        self.core
            .tasks
            .get(id.index())
            .map(|t| t.config.name())
            .ok_or(OsError::InvalidId)
    }

    /// Finds a task by name.
    pub fn find_task(&self, name: &str) -> Option<TaskId> {
        self.core
            .tasks
            .iter()
            .position(|t| t.config.name() == name)
            .map(|i| TaskId(i as u32))
    }

    /// Currently running task, if any.
    pub fn running_task(&self) -> Option<TaskId> {
        self.core.running
    }

    /// Total CPU time consumed by tasks so far.
    pub fn busy_time(&self) -> Duration {
        self.core.busy
    }

    /// CPU utilisation since start (0.0 when no time has passed).
    pub fn utilization(&self) -> f64 {
        let elapsed = self.core.now.duration_since(Instant::ZERO);
        if elapsed.is_zero() {
            0.0
        } else {
            self.core.busy.as_micros() as f64 / elapsed.as_micros() as f64
        }
    }

    /// Mutable access to an alarm (used by the frequency error injector).
    ///
    /// # Errors
    ///
    /// Returns [`OsError::InvalidId`] for an unknown id.
    pub fn alarm_mut(&mut self, id: AlarmId) -> Result<&mut Alarm, OsError> {
        if id.index() >= self.core.alarms.len() {
            return Err(OsError::InvalidId);
        }
        // The caller may mutate the alarm through the returned reference.
        self.core.alarm_stamps[id.index()] = self.core.epoch;
        Ok(&mut self.core.alarms[id.index()])
    }

    /// Immutable access to an alarm.
    ///
    /// # Errors
    ///
    /// Returns [`OsError::InvalidId`] for an unknown id.
    pub fn alarm(&self, id: AlarmId) -> Result<&Alarm, OsError> {
        self.core.alarms.get(id.index()).ok_or(OsError::InvalidId)
    }

    // ------------------------------------------------------------------
    // System services (callable from outside the kernel loop)
    // ------------------------------------------------------------------

    /// Starts the OS: fires the startup hook and activates autostart tasks.
    pub fn start(&mut self, world: &mut W) {
        self.core.start(world);
    }

    /// Shuts the OS down (fires the shutdown hook; scheduling stops).
    pub fn shutdown(&mut self, world: &mut W) {
        self.core.shutdown(world);
    }

    /// Resets all runtime state to the pre-[`Os::start`] configuration,
    /// keeping the task/alarm/resource tables, bodies, observers and trace
    /// settings. A reset OS replays a simulation exactly like a freshly
    /// built one — the campaign engine's world pooling relies on this
    /// equivalence (pinned by a proptest at the node level).
    pub fn reset(&mut self) {
        self.core.reset_runtime();
        self.arena.reset();
    }

    /// Captures every piece of kernel *runtime* state into a deterministic
    /// snapshot: TCB runtime fields, alarm arming/cycle scales, resource
    /// holders, pending timers, the ready queue and scheduling keys, the
    /// clock, the busy meter, the trace, and the plan arena (in-flight
    /// plans). Static configuration (task/alarm/resource tables), task
    /// bodies and hook observers are *not* captured: bodies must keep all
    /// replay-relevant state in their arena plans, and observers snapshot
    /// their own state at the node level.
    ///
    /// # Panics
    ///
    /// Panics if any in-flight plan holds a boxed [`Step::Effect`] closure
    /// (see [`PlanArena::snapshot`]).
    pub fn snapshot(&mut self) -> OsSnapshot {
        let mut snap = OsSnapshot::default();
        self.snapshot_into(&mut snap);
        snap
    }

    /// [`Os::snapshot`] into a caller-owned buffer whose capacity is
    /// retained across captures: TCB rows are updated in place, the timer
    /// wheel, trace and arena reuse their vectors, so re-capturing into a
    /// warm buffer is allocation-free in steady state.
    ///
    /// Capturing also advances the kernel's epoch and records the snapshot
    /// as the state's lineage, enabling the O(dirty) delta path in
    /// [`Os::restore_from`].
    ///
    /// # Panics
    ///
    /// Panics if any in-flight plan holds a boxed [`Step::Effect`] closure
    /// (see [`PlanArena::snapshot`]).
    pub fn snapshot_into(&mut self, snap: &mut OsSnapshot) {
        let core = &mut self.core;
        snap.tasks.truncate(core.tasks.len());
        let filled = snap.tasks.len();
        for (dst, src) in snap.tasks.iter_mut().zip(core.tasks.iter()) {
            dst.state = src.state;
            dst.planned = src.planned;
            dst.current_priority = src.current_priority;
            dst.set_events = src.set_events;
            dst.waiting_for = src.waiting_for;
            dst.held.clone_from(&src.held);
            dst.issued = src.issued;
            dst.completed = src.completed;
            dst.exec_time = src.exec_time;
            dst.budget_reported = src.budget_reported;
            dst.ready_key = src.ready_key;
        }
        for src in core.tasks.iter().skip(filled) {
            snap.tasks.push(TcbSnapshot {
                state: src.state,
                planned: src.planned,
                current_priority: src.current_priority,
                set_events: src.set_events,
                waiting_for: src.waiting_for,
                held: src.held.clone(),
                issued: src.issued,
                completed: src.completed,
                exec_time: src.exec_time,
                budget_reported: src.budget_reported,
                ready_key: src.ready_key,
            });
        }
        snap.task_stamps.clone_from(&core.task_stamps);
        snap.alarms.clear();
        snap.alarms.extend(core.alarms.iter().map(Alarm::runtime));
        snap.alarm_stamps.clone_from(&core.alarm_stamps);
        snap.resource_holders.clear();
        snap.resource_holders
            .extend(core.resources.iter().map(Resource::holder));
        snap.resource_stamp = core.resource_stamp;
        core.timers.snapshot_into(&mut snap.timers);
        snap.now = core.now;
        snap.running = core.running;
        snap.trace.clone_from(&core.trace);
        snap.started = core.started;
        snap.next_back_key = core.next_back_key;
        snap.next_front_key = core.next_front_key;
        snap.ready_bits = core.ready.bits;
        snap.ready_bands.truncate(core.ready.bands.len());
        let filled = snap.ready_bands.len();
        for (dst, src) in snap.ready_bands.iter_mut().zip(core.ready.bands.iter()) {
            dst.clone_from(src);
        }
        snap.ready_bands
            .extend(core.ready.bands.iter().skip(filled).cloned());
        self.arena.snapshot_into(&mut snap.arena);
        snap.busy = core.busy;
        snap.epoch = core.epoch;
        snap.id = next_snapshot_id();
        core.derived_from = snap.id;
        core.epoch += 1;
    }

    /// Restores runtime state captured by [`Os::snapshot`], after which the
    /// OS replays exactly like the snapshotted one.
    ///
    /// When the kernel's state is still *derived from* exactly this
    /// snapshot (captured from it, or restored from it, with no reset in
    /// between), any TCB or alarm whose last-write stamp is at most the
    /// snapshot's epoch provably never changed since capture and is
    /// skipped — restore cost is O(dirty regions). Otherwise every region
    /// is copied. Buffers (timer wheel slots, ready bands, arena plan
    /// slots) are restored in place with their capacity retained, so a
    /// restore on the campaign hot path is allocation-free once buffers
    /// have reached steady-state size.
    ///
    /// The snapshot must come from an identically configured OS (same
    /// task/alarm/resource tables) — normally the same instance.
    ///
    /// # Panics
    ///
    /// Panics if the table sizes disagree with the snapshot.
    pub fn restore_from(&mut self, snap: &OsSnapshot) -> RestoreStats {
        assert_eq!(
            self.core.tasks.len(),
            snap.tasks.len(),
            "snapshot belongs to an OS with a different task table"
        );
        assert_eq!(self.core.alarms.len(), snap.alarms.len());
        assert_eq!(self.core.resources.len(), snap.resource_holders.len());
        let mut stats = RestoreStats::default();
        let core = &mut self.core;
        let full = core.derived_from != snap.id;
        for i in 0..core.tasks.len() {
            let copy = full || core.task_stamps[i] > snap.epoch;
            stats.region(copy);
            if copy {
                let tcb = &mut core.tasks[i];
                let s = &snap.tasks[i];
                tcb.state = s.state;
                tcb.planned = s.planned;
                tcb.current_priority = s.current_priority;
                tcb.set_events = s.set_events;
                tcb.waiting_for = s.waiting_for;
                tcb.held.clone_from(&s.held);
                tcb.issued = s.issued;
                tcb.completed = s.completed;
                tcb.exec_time = s.exec_time;
                tcb.budget_reported = s.budget_reported;
                tcb.ready_key = s.ready_key;
                core.task_stamps[i] = snap.task_stamps[i];
            }
        }
        for i in 0..core.alarms.len() {
            let copy = full || core.alarm_stamps[i] > snap.epoch;
            stats.region(copy);
            if copy {
                core.alarms[i].restore_runtime(snap.alarms[i]);
                core.alarm_stamps[i] = snap.alarm_stamps[i];
            }
        }
        {
            let copy = full || core.resource_stamp > snap.epoch;
            stats.region(copy);
            if copy {
                for (resource, holder) in
                    core.resources.iter_mut().zip(&snap.resource_holders)
                {
                    resource.release();
                    if let Some(task) = holder {
                        resource.occupy(*task);
                    }
                }
                core.resource_stamp = snap.resource_stamp;
            }
        }
        stats.absorb(core.timers.restore_from(&snap.timers));
        // Scalars, the ready queue and the trace form one always-copied
        // header region: they change on virtually every kernel step, so
        // dirty-tracking them would only add bookkeeping.
        stats.region(true);
        core.now = snap.now;
        core.running = snap.running;
        core.trace.clone_from(&snap.trace);
        core.started = snap.started;
        core.next_back_key = snap.next_back_key;
        core.next_front_key = snap.next_front_key;
        core.ready.bits = snap.ready_bits;
        let bands = &mut core.ready.bands;
        if bands.len() < snap.ready_bands.len() {
            bands.resize_with(snap.ready_bands.len(), VecDeque::new);
        }
        for (i, band) in bands.iter_mut().enumerate() {
            match snap.ready_bands.get(i) {
                Some(src) => band.clone_from(src),
                None => band.clear(),
            }
        }
        stats.absorb(self.arena.restore_from(&snap.arena));
        self.core.busy = snap.busy;
        self.core.derived_from = snap.id;
        self.core.epoch = self.core.epoch.max(snap.epoch) + 1;
        stats
    }

    /// Captures the same content as [`Os::snapshot_into`] but *without*
    /// joining the restore lineage: the kernel's epoch/`derived_from`
    /// bookkeeping is untouched and the capture gets id 0, so it can never
    /// enable a delta restore. The macro-stepping engine samples hyperperiod
    /// images with this — a real snapshot per sample would sever the
    /// campaign prefix checkpoints' lineage and force their restores onto
    /// the full-copy path.
    ///
    /// # Panics
    ///
    /// Panics if any in-flight plan holds a boxed [`Step::Effect`] closure
    /// (see [`PlanArena::snapshot`]).
    pub fn image_into(&self, snap: &mut OsSnapshot) {
        let core = &self.core;
        snap.tasks.truncate(core.tasks.len());
        let filled = snap.tasks.len();
        for (dst, src) in snap.tasks.iter_mut().zip(core.tasks.iter()) {
            dst.state = src.state;
            dst.planned = src.planned;
            dst.current_priority = src.current_priority;
            dst.set_events = src.set_events;
            dst.waiting_for = src.waiting_for;
            dst.held.clone_from(&src.held);
            dst.issued = src.issued;
            dst.completed = src.completed;
            dst.exec_time = src.exec_time;
            dst.budget_reported = src.budget_reported;
            dst.ready_key = src.ready_key;
        }
        for src in core.tasks.iter().skip(filled) {
            snap.tasks.push(TcbSnapshot {
                state: src.state,
                planned: src.planned,
                current_priority: src.current_priority,
                set_events: src.set_events,
                waiting_for: src.waiting_for,
                held: src.held.clone(),
                issued: src.issued,
                completed: src.completed,
                exec_time: src.exec_time,
                budget_reported: src.budget_reported,
                ready_key: src.ready_key,
            });
        }
        snap.task_stamps.clone_from(&core.task_stamps);
        snap.alarms.clear();
        snap.alarms.extend(core.alarms.iter().map(Alarm::runtime));
        snap.alarm_stamps.clone_from(&core.alarm_stamps);
        snap.resource_holders.clear();
        snap.resource_holders
            .extend(core.resources.iter().map(Resource::holder));
        snap.resource_stamp = core.resource_stamp;
        core.timers.image_into(&mut snap.timers);
        snap.now = core.now;
        snap.running = core.running;
        snap.trace.clone_from(&core.trace);
        snap.started = core.started;
        snap.next_back_key = core.next_back_key;
        snap.next_front_key = core.next_front_key;
        snap.ready_bits = core.ready.bits;
        snap.ready_bands.truncate(core.ready.bands.len());
        let filled = snap.ready_bands.len();
        for (dst, src) in snap.ready_bands.iter_mut().zip(core.ready.bands.iter()) {
            dst.clone_from(src);
        }
        snap.ready_bands
            .extend(core.ready.bands.iter().skip(filled).cloned());
        self.arena.image_into(&mut snap.arena);
        snap.busy = core.busy;
        snap.epoch = core.epoch;
        snap.id = 0;
    }

    /// Applies a certified [`CycleProgram`] `k` times in closed form: the
    /// clock and busy meter advance `k` hyperperiods, per-task activation
    /// counters and ready keys accumulate their per-hyperperiod deltas, and
    /// the timer wheel shifts every pending entry — deadline checks carry
    /// their task's activation-sequence shift. O(tasks + pending timers),
    /// independent of how many events the skipped span would have fired.
    ///
    /// The caller (the node-level macro-stepping engine) must only apply a
    /// program derived from *and guard-verified against* this kernel's
    /// current state; anything else diverges silently.
    pub fn apply_cycle_program(&mut self, program: &CycleProgram, k: u64) {
        let core = &mut self.core;
        let shift = program.h * k;
        core.now += shift;
        core.busy += program.d_busy * k;
        core.next_back_key += program.d_back * k as i64;
        core.next_front_key += program.d_front * k as i64;
        for (i, d) in program.per_task.iter().enumerate() {
            if d.d_issued == 0 && d.d_ready_key == 0 {
                continue;
            }
            let tcb = &mut core.tasks[i];
            tcb.issued += d.d_issued * k;
            tcb.completed += d.d_issued * k;
            tcb.ready_key += d.d_ready_key * k as i64;
            core.task_stamps[i] = core.epoch;
        }
        let per_task = &program.per_task;
        core.timers
            .fast_forward(shift, program.d_seq * k, |ev| {
                if let KernelEvent::DeadlineCheck { task, seq } = ev {
                    *seq += per_task[task.index()].d_issued * k;
                }
            });
    }

    /// `ActivateTask`: moves a suspended task to ready or queues an extra
    /// activation.
    ///
    /// # Errors
    ///
    /// [`OsError::InvalidId`] for unknown tasks, [`OsError::ActivationLimit`]
    /// when the activation queue is full (also reported via the error hook).
    pub fn activate_task(&mut self, id: TaskId, world: &mut W) -> Result<(), OsError> {
        self.core.activate_task(id, world)
    }

    /// `SetEvent`: sets events on an extended task, waking it if it waits
    /// for any of them.
    ///
    /// # Errors
    ///
    /// [`OsError::InvalidId`] for unknown tasks, [`OsError::InvalidAccess`]
    /// for basic tasks, [`OsError::InvalidState`] if the task is suspended.
    pub fn set_event(&mut self, id: TaskId, mask: EventMask, world: &mut W) -> Result<(), OsError> {
        self.core.set_event(id, mask, world)
    }

    /// `SetRelAlarm`: arms an alarm `offset` from now, optionally cyclic.
    ///
    /// # Errors
    ///
    /// [`OsError::InvalidId`] for unknown alarms, [`OsError::InvalidState`]
    /// if already armed, [`OsError::InvalidValue`] for a zero offset or cycle.
    pub fn set_rel_alarm(
        &mut self,
        id: AlarmId,
        offset: Duration,
        cycle: Option<Duration>,
    ) -> Result<(), OsError> {
        self.core.set_rel_alarm(id, offset, cycle)
    }

    /// `CancelAlarm`: disarms an alarm.
    ///
    /// # Errors
    ///
    /// [`OsError::InvalidId`] for unknown alarms, [`OsError::AlarmNotInUse`]
    /// if disarmed.
    pub fn cancel_alarm(&mut self, id: AlarmId) -> Result<(), OsError> {
        self.core.cancel_alarm(id)
    }

    // ------------------------------------------------------------------
    // Execution
    // ------------------------------------------------------------------

    /// Runs the simulation until `end` (inclusive of events at `end`).
    ///
    /// # Panics
    ///
    /// Panics if the OS was not started or `end` is in the past.
    pub fn run_until(&mut self, end: Instant, world: &mut W) {
        assert!(self.core.started, "call start() first");
        assert!(end >= self.core.now, "cannot run backwards in time");
        loop {
            // Fire every timer event due at the current instant.
            self.core.fire_due_timers(world);
            // Choose who runs.
            let chosen = self.core.pick_next();
            match chosen {
                None => {
                    // CPU idle: jump to the next timer event or to `end`.
                    match self.core.timers.peek_time() {
                        Some(t) if t <= end => {
                            self.core.now = t;
                        }
                        _ => {
                            self.core.now = end;
                            return;
                        }
                    }
                }
                Some(id) => {
                    self.dispatch(id, world);
                    let done = self.execute_slice(id, end, world);
                    if done {
                        return;
                    }
                }
            }
        }
    }

    /// Runs for `dur` from the current time.
    pub fn run_for(&mut self, dur: Duration, world: &mut W) {
        self.run_until(self.core.now + dur, world);
    }

    // ------------------------------------------------------------------
    // Internals (body/arena side of the split borrow)
    // ------------------------------------------------------------------

    fn dispatch(&mut self, id: TaskId, world: &mut W) {
        if self.core.running == Some(id) && self.core.tasks[id.index()].state == TaskState::Running
        {
            return;
        }
        // Preempt whoever was running.
        if let Some(prev) = self.core.running {
            if self.core.tasks[prev.index()].state == TaskState::Running {
                self.core.make_ready(prev, true);
                let name = self.core.tasks[prev.index()].config.name();
                self.core
                    .trace
                    .record(self.core.now, TRACE_SOURCE, "preempt", name);
                self.core.fire_hook(HookEvent::PostTask(prev), world);
            }
        }
        let tcb = &mut self.core.tasks[id.index()];
        if tcb.state == TaskState::Ready {
            let (priority, key) = (tcb.current_priority, tcb.ready_key);
            self.core.ready.remove(priority, key, id);
        }
        let tcb = &mut self.core.tasks[id.index()];
        tcb.state = TaskState::Running;
        // One stamp covers every TCB write this dispatch performs (the
        // epoch cannot change mid-call).
        self.core.task_stamps[id.index()] = self.core.epoch;
        self.core.running = Some(id);
        let name = self.core.tasks[id.index()].config.name();
        self.core
            .trace
            .record(self.core.now, TRACE_SOURCE, "dispatch", name);
        self.core.fire_hook(HookEvent::PreTask(id), world);
        // First dispatch of an activation: plan the body into the task's
        // arena slot (cleared, capacity retained — no allocation once the
        // slot has grown to the steady-state plan length). The body plans
        // in place: `bodies`, `arena` and `core` are disjoint fields, so no
        // move out of the TCB is needed.
        if !self.core.tasks[id.index()].planned {
            let buf = self.arena.slot_mut(id.index());
            buf.clear();
            self.bodies[id.index()].plan_into(self.core.now, world, buf);
            let tcb = &mut self.core.tasks[id.index()];
            tcb.planned = true;
            tcb.exec_time = Duration::ZERO;
            tcb.budget_reported = false;
        }
    }

    /// Executes steps of the running task until it terminates, blocks, is
    /// preempted, or simulated time reaches `end`. Returns `true` when the
    /// caller's horizon `end` was reached.
    fn execute_slice(&mut self, id: TaskId, end: Instant, world: &mut W) -> bool {
        loop {
            // A timer may have readied a higher-priority task.
            if self.core.pick_next() != Some(id) {
                return false;
            }
            let step = self.arena.slot_mut(id.index()).pop();
            let Some(step) = step else {
                self.terminate_running(id, world);
                return false;
            };
            match step {
                Step::Compute(d) => {
                    if let Some(reached_end) = self.run_compute(id, d, end, world) {
                        return reached_end;
                    }
                }
                Step::Effect(mut f) => {
                    let now = self.core.now;
                    let mut ctx = EffectCtx::for_kernel(now, id, KernelServices::new(&mut self.core));
                    f(world, &mut ctx);
                }
                Step::EffectRef(token) => {
                    // In-place dispatch: the body stays in `bodies` while
                    // the effect holds the core as its service view — the
                    // split borrow that replaced the take/restore dance.
                    let now = self.core.now;
                    let mut ctx = EffectCtx::for_kernel(now, id, KernelServices::new(&mut self.core));
                    self.bodies[id.index()].run_effect(token, world, &mut ctx);
                }
                Step::ActivateTask(t) => {
                    let _ = self.core.activate_task(t, world);
                }
                Step::SetEvent(t, m) => {
                    let _ = self.core.set_event(t, m, world);
                }
                Step::WaitEvent(mask) => {
                    if self.core.tasks[id.index()].config.kind() != TaskKind::Extended {
                        self.core.report_error(OsError::InvalidAccess, world);
                        // Basic tasks cannot wait; ignore the step.
                        continue;
                    }
                    let tcb = &mut self.core.tasks[id.index()];
                    if tcb.set_events.intersects(mask) {
                        continue; // event already pending: no blocking
                    }
                    tcb.waiting_for = mask;
                    tcb.state = TaskState::Waiting;
                    self.core.task_stamps[id.index()] = self.core.epoch;
                    self.core.running = None;
                    let name = self.core.tasks[id.index()].config.name();
                    self.core
                        .trace
                        .record(self.core.now, TRACE_SOURCE, "wait", name);
                    self.core.fire_hook(HookEvent::PostTask(id), world);
                    return false;
                }
                Step::ClearEvent(mask) => {
                    let tcb = &mut self.core.tasks[id.index()];
                    tcb.set_events = tcb.set_events.clear(mask);
                    self.core.task_stamps[id.index()] = self.core.epoch;
                }
                Step::GetResource(rid) => {
                    if rid.0 as usize >= self.core.resources.len() {
                        self.core.report_error(OsError::InvalidId, world);
                        continue;
                    }
                    if self.core.resources[rid.0 as usize].is_occupied() {
                        // With a correct ceiling this cannot happen; report
                        // and skip so faulty configs surface in the trace.
                        self.core.report_error(OsError::ResourceOrder, world);
                        continue;
                    }
                    let prior = self.core.tasks[id.index()].current_priority;
                    let ceiling = self.core.resources[rid.0 as usize].ceiling();
                    self.core.resources[rid.0 as usize].occupy(id);
                    self.core.resource_stamp = self.core.epoch;
                    let tcb = &mut self.core.tasks[id.index()];
                    tcb.held.push(rid, prior);
                    if ceiling > tcb.current_priority {
                        tcb.current_priority = ceiling;
                    }
                    self.core.task_stamps[id.index()] = self.core.epoch;
                }
                Step::ReleaseResource(rid) => {
                    if rid.0 as usize >= self.core.resources.len() {
                        self.core.report_error(OsError::InvalidId, world);
                        continue;
                    }
                    let restored = self.core.tasks[id.index()].held.pop_matching(rid);
                    self.core.task_stamps[id.index()] = self.core.epoch;
                    match restored {
                        Some(prior) => {
                            self.core.resources[rid.0 as usize].release();
                            self.core.resource_stamp = self.core.epoch;
                            self.core.tasks[id.index()].current_priority = prior;
                            // Dropping priority may enable preemption.
                            if self.core.pick_next() != Some(id) {
                                return false;
                            }
                        }
                        None => {
                            self.core.report_error(OsError::ResourceOrder, world);
                        }
                    }
                }
                Step::ChainTask(t) => {
                    self.terminate_running(id, world);
                    let _ = self.core.activate_task(t, world);
                    return false;
                }
                Step::Schedule => {
                    // Re-run the dispatch decision ignoring this task's
                    // non-preemptability: OSEK Schedule() semantics. If a
                    // higher-priority task is ready, yield to it (re-enter
                    // the ready queue at the front, like a preemption).
                    if let Some(best) = self.core.pick_ignoring_nonpreempt() {
                        if best != id {
                            self.core.make_ready(id, true);
                            let name = self.core.tasks[id.index()].config.name();
                            self.core
                                .trace
                                .record(self.core.now, TRACE_SOURCE, "yield", name);
                            self.core.running = None;
                            self.core.fire_hook(HookEvent::PostTask(id), world);
                            return false;
                        }
                    }
                }
            }
        }
    }

    /// Advances simulated time while the task computes. Returns `Some(true)`
    /// if the run horizon was reached, `Some(false)` if the task should stop
    /// executing this slice (preemption), `None` when the compute step
    /// finished and the next step may run.
    fn run_compute(
        &mut self,
        id: TaskId,
        d: Duration,
        end: Instant,
        world: &mut W,
    ) -> Option<bool> {
        let mut remaining = d;
        while !remaining.is_zero() {
            let finish = self.core.now + remaining;
            // Budget crossing, if any, caps the slice so the hook fires at
            // the exact overrun instant.
            let budget_cross = {
                let tcb = &self.core.tasks[id.index()];
                match tcb.config.execution_budget() {
                    Some(budget) if !tcb.budget_reported && tcb.exec_time < budget => {
                        Some(self.core.now + (budget - tcb.exec_time))
                    }
                    _ => None,
                }
            };
            let next_timer = self.core.timers.peek_time();
            let mut slice_end = finish;
            if let Some(t) = next_timer {
                if t < slice_end {
                    slice_end = t;
                }
            }
            if let Some(b) = budget_cross {
                if b < slice_end {
                    slice_end = b;
                }
            }
            if end < slice_end {
                slice_end = end;
            }
            let consumed = slice_end.saturating_duration_since(self.core.now);
            self.core.now = slice_end;
            self.core.busy += consumed;
            remaining = remaining.saturating_sub(consumed);
            {
                let tcb = &mut self.core.tasks[id.index()];
                tcb.exec_time += consumed;
                // Also covers the `budget_reported` write below.
                self.core.task_stamps[id.index()] = self.core.epoch;
            }
            // Budget exactly reached?
            let over = {
                let tcb = &self.core.tasks[id.index()];
                matches!(tcb.config.execution_budget(), Some(b) if !tcb.budget_reported && tcb.exec_time >= b)
            };
            if over {
                let budget = self.core.tasks[id.index()]
                    .config
                    .execution_budget()
                    .expect("budget configured");
                self.core.tasks[id.index()].budget_reported = true;
                let name = self.core.tasks[id.index()].config.name();
                self.core
                    .trace
                    .record(self.core.now, TRACE_SOURCE, "budget_exceeded", name);
                self.core
                    .fire_hook(HookEvent::BudgetExceeded { task: id, budget }, world);
            }
            if self.core.now == end && !remaining.is_zero() {
                // Horizon reached mid-compute: save the remainder.
                self.arena
                    .slot_mut(id.index())
                    .push_front(Step::Compute(remaining));
                return Some(true);
            }
            // Process timers due exactly now; they may ready someone higher.
            self.core.fire_due_timers(world);
            if self.core.pick_next() != Some(id) {
                if !remaining.is_zero() {
                    self.arena
                        .slot_mut(id.index())
                        .push_front(Step::Compute(remaining));
                }
                return Some(false);
            }
        }
        // Step finished; horizon may coincide with completion.
        if self.core.now == end {
            return Some(true);
        }
        None
    }

    fn terminate_running(&mut self, id: TaskId, world: &mut W) {
        self.core.task_stamps[id.index()] = self.core.epoch;
        // OSEK: terminating with occupied resources is an error; release them.
        if !self.core.tasks[id.index()].held.is_empty() {
            self.core.report_error(OsError::ResourceOrder, world);
            let ids: Vec<ResourceId> = self.core.tasks[id.index()].held.ids().collect();
            for rid in ids {
                self.core.resources[rid.0 as usize].release();
            }
            self.core.resource_stamp = self.core.epoch;
            self.core.tasks[id.index()].held.clear();
            let base = self.core.tasks[id.index()].config.priority();
            self.core.tasks[id.index()].current_priority = base;
        }
        {
            let tcb = &mut self.core.tasks[id.index()];
            tcb.completed += 1;
            tcb.planned = false;
            tcb.set_events = EventMask::NONE;
        }
        self.arena.slot_mut(id.index()).clear();
        self.core.running = None;
        let name = self.core.tasks[id.index()].config.name();
        self.core
            .trace
            .record(self.core.now, TRACE_SOURCE, "terminate", name);
        self.core.fire_hook(HookEvent::Terminate(id), world);
        // Queued activation pending? Re-enter ready immediately.
        if self.core.tasks[id.index()].queued() > 0 {
            self.core.make_ready(id, false);
        } else {
            self.core.tasks[id.index()].state = TaskState::Suspended;
        }
    }
}

impl<W> Core<W> {
    fn start(&mut self, world: &mut W) {
        assert!(!self.started, "OS started twice");
        self.started = true;
        self.trace.record(self.now, TRACE_SOURCE, "startup", "");
        self.fire_hook(HookEvent::Startup, world);
        let autostart: Vec<TaskId> = self
            .tasks
            .iter()
            .enumerate()
            .filter(|(_, t)| t.config.is_autostart())
            .map(|(i, _)| TaskId(i as u32))
            .collect();
        for id in autostart {
            let _ = self.activate_task(id, world);
        }
    }

    fn shutdown(&mut self, world: &mut W) {
        self.trace.record(self.now, TRACE_SOURCE, "shutdown", "");
        self.fire_hook(HookEvent::Shutdown, world);
        self.started = false;
    }

    /// Resets every core field to the pre-start configuration (the arena is
    /// reset by [`Os::reset`] alongside).
    fn reset_runtime(&mut self) {
        for tcb in &mut self.tasks {
            tcb.state = TaskState::Suspended;
            tcb.planned = false;
            tcb.current_priority = tcb.config.priority();
            tcb.set_events = EventMask::NONE;
            tcb.waiting_for = EventMask::NONE;
            tcb.held.clear();
            tcb.issued = 0;
            tcb.completed = 0;
            tcb.exec_time = Duration::ZERO;
            tcb.budget_reported = false;
            tcb.ready_key = 0;
        }
        for alarm in &mut self.alarms {
            alarm.disarm();
            alarm.set_cycle_scale_ppm(1_000_000);
        }
        for resource in &mut self.resources {
            resource.release();
        }
        self.timers.clear();
        self.now = Instant::ZERO;
        self.running = None;
        self.trace.clear();
        self.started = false;
        self.next_back_key = 1;
        self.next_front_key = -1;
        self.ready.clear();
        self.busy = Duration::ZERO;
        // Stamp with the *current* epoch (never zero) and sever the
        // lineage: a restore after a reset must take the full-copy path.
        self.task_stamps.fill(self.epoch);
        self.alarm_stamps.fill(self.epoch);
        self.resource_stamp = self.epoch;
        self.derived_from = 0;
    }

    fn activate_task(&mut self, id: TaskId, world: &mut W) -> Result<(), OsError> {
        if id.index() >= self.tasks.len() {
            return Err(OsError::InvalidId);
        }
        let max = self.tasks[id.index()].config.max_activations() as u64;
        if self.tasks[id.index()].queued() >= max {
            self.report_error(OsError::ActivationLimit, world);
            return Err(OsError::ActivationLimit);
        }
        {
            let tcb = &mut self.tasks[id.index()];
            tcb.issued += 1;
            self.task_stamps[id.index()] = self.epoch;
        }
        let seq = self.tasks[id.index()].issued;
        // Arm the deadline check for this activation.
        if let Some(deadline) = self.tasks[id.index()].config.deadline() {
            self.timers
                .schedule(self.now + deadline, KernelEvent::DeadlineCheck { task: id, seq });
        }
        let name = self.tasks[id.index()].config.name();
        self.trace.record(self.now, TRACE_SOURCE, "activate", name);
        self.fire_hook(HookEvent::Activate(id), world);
        if self.tasks[id.index()].state == TaskState::Suspended {
            self.make_ready(id, false);
        }
        Ok(())
    }

    fn set_event(&mut self, id: TaskId, mask: EventMask, world: &mut W) -> Result<(), OsError> {
        let Some(tcb) = self.tasks.get_mut(id.index()) else {
            return Err(OsError::InvalidId);
        };
        if tcb.config.kind() != TaskKind::Extended {
            self.report_error(OsError::InvalidAccess, world);
            return Err(OsError::InvalidAccess);
        }
        if tcb.state == TaskState::Suspended {
            self.report_error(OsError::InvalidState, world);
            return Err(OsError::InvalidState);
        }
        tcb.set_events = tcb.set_events.union(mask);
        let wake = tcb.state == TaskState::Waiting && tcb.set_events.intersects(tcb.waiting_for);
        if wake {
            tcb.waiting_for = EventMask::NONE;
        }
        self.task_stamps[id.index()] = self.epoch;
        if wake {
            self.make_ready(id, false);
            let name = self.tasks[id.index()].config.name();
            self.trace.record(self.now, TRACE_SOURCE, "wake", name);
        }
        Ok(())
    }

    fn set_rel_alarm(
        &mut self,
        id: AlarmId,
        offset: Duration,
        cycle: Option<Duration>,
    ) -> Result<(), OsError> {
        let Some(alarm) = self.alarms.get_mut(id.index()) else {
            return Err(OsError::InvalidId);
        };
        if alarm.is_armed() {
            return Err(OsError::InvalidState);
        }
        if offset.is_zero() || cycle.is_some_and(|c| c.is_zero()) {
            return Err(OsError::InvalidValue);
        }
        alarm.arm(cycle);
        self.alarm_stamps[id.index()] = self.epoch;
        self.timers
            .schedule(self.now + offset, KernelEvent::AlarmExpiry(id));
        Ok(())
    }

    fn cancel_alarm(&mut self, id: AlarmId) -> Result<(), OsError> {
        let Some(alarm) = self.alarms.get_mut(id.index()) else {
            return Err(OsError::InvalidId);
        };
        if !alarm.is_armed() {
            return Err(OsError::AlarmNotInUse);
        }
        alarm.disarm();
        self.alarm_stamps[id.index()] = self.epoch;
        // The pending AlarmExpiry stays queued; expiry of a disarmed alarm
        // is ignored, matching CancelAlarm semantics.
        Ok(())
    }

    fn fire_due_timers(&mut self, world: &mut W) {
        while let Some(t) = self.timers.peek_time() {
            if t > self.now {
                break;
            }
            let (_, ev) = self.timers.pop().expect("peeked event exists");
            match ev {
                KernelEvent::AlarmExpiry(id) => self.expire_alarm(id, world),
                KernelEvent::DeadlineCheck { task, seq } => self.check_deadline(task, seq, world),
            }
        }
    }

    fn expire_alarm(&mut self, id: AlarmId, world: &mut W) {
        let alarm = &self.alarms[id.index()];
        if !alarm.is_armed() {
            return; // cancelled
        }
        let action = alarm.action();
        let name = alarm.name();
        let effective_cycle = alarm.effective_cycle();
        self.trace.record(self.now, TRACE_SOURCE, "alarm", name);
        match effective_cycle {
            Some(cycle) => {
                self.timers
                    .schedule(self.now + cycle, KernelEvent::AlarmExpiry(id));
            }
            None => {
                self.alarms[id.index()].disarm();
                self.alarm_stamps[id.index()] = self.epoch;
            }
        }
        match action {
            AlarmAction::ActivateTask(t) => {
                let _ = self.activate_task(t, world);
            }
            AlarmAction::SetEvent(t, m) => {
                let _ = self.set_event(t, m, world);
            }
        }
    }

    fn check_deadline(&mut self, task: TaskId, seq: u64, world: &mut W) {
        let tcb = &self.tasks[task.index()];
        if tcb.completed < seq {
            let name = tcb.config.name();
            self.trace
                .record(self.now, TRACE_SOURCE, "deadline_miss", name);
            self.fire_hook(
                HookEvent::DeadlineMiss {
                    task,
                    activated_at: self.now
                        - tcb.config.deadline().expect("deadline configured"),
                },
                world,
            );
        }
    }

    fn make_ready(&mut self, id: TaskId, front: bool) {
        let key = if front {
            let k = self.next_front_key;
            self.next_front_key -= 1;
            k
        } else {
            let k = self.next_back_key;
            self.next_back_key += 1;
            k
        };
        let tcb = &mut self.tasks[id.index()];
        tcb.state = TaskState::Ready;
        tcb.ready_key = key;
        let priority = tcb.current_priority;
        self.task_stamps[id.index()] = self.epoch;
        self.ready.push(priority, key, id, front);
    }

    /// The highest-priority eligible task: the queued `Ready` minimum from
    /// the bitmap queue, beaten by the running task when it outranks it.
    /// Higher priority wins; within a priority, the lower ready key wins
    /// (keys are globally unique, so bands never tie). This pins the
    /// `(priority, ready_key, TaskId)` ordering that both pick variants
    /// previously re-implemented as full TCB scans.
    fn best_eligible(&self) -> Option<TaskId> {
        let queued = self.ready.peek_best();
        let running = self.running.and_then(|id| {
            let tcb = &self.tasks[id.index()];
            (tcb.state == TaskState::Running)
                .then_some((tcb.current_priority, tcb.ready_key, id))
        });
        match (running, queued) {
            (Some(r), Some(q)) => {
                if r.0 > q.0 || (r.0 == q.0 && r.1 < q.1) {
                    Some(r.2)
                } else {
                    Some(q.2)
                }
            }
            (Some(r), None) => Some(r.2),
            (None, Some(q)) => Some(q.2),
            (None, None) => None,
        }
    }

    /// Like [`Core::pick_next`] but ignoring the running task's
    /// non-preemptability — the decision `Schedule()` asks for.
    fn pick_ignoring_nonpreempt(&self) -> Option<TaskId> {
        self.best_eligible()
    }

    /// Picks the task that should run now, honouring non-preemptability.
    fn pick_next(&self) -> Option<TaskId> {
        if let Some(run) = self.running {
            let tcb = &self.tasks[run.index()];
            if tcb.state == TaskState::Running && !tcb.config.is_preemptable() {
                return Some(run);
            }
        }
        // The running task keeps the CPU against equal-priority ready tasks:
        // its key is its dispatch-time key which is already minimal in band.
        self.best_eligible()
    }

    fn report_error(&mut self, err: OsError, world: &mut W) {
        self.trace
            .record(self.now, TRACE_SOURCE, "os_error", err.to_string());
        self.fire_hook(HookEvent::Error(err), world);
    }

    fn fire_hook(&mut self, event: HookEvent, world: &mut W) {
        if self.observers.is_empty() {
            return;
        }
        let mut observers = std::mem::take(&mut self.observers);
        for obs in &mut observers {
            obs.on_hook(self.now, event, world);
        }
        // New observers cannot be registered from inside hooks.
        debug_assert!(self.observers.is_empty());
        self.observers = observers;
    }
}

/// The kernel side of the split borrow: effects reach these services
/// through the [`KernelServices`] view on their [`EffectCtx`].
impl<W> ServiceCore<W> for Core<W> {
    fn activate_task(&mut self, task: TaskId, world: &mut W) -> Result<(), OsError> {
        Core::activate_task(self, task, world)
    }

    fn set_event(&mut self, task: TaskId, mask: EventMask, world: &mut W) -> Result<(), OsError> {
        Core::set_event(self, task, mask, world)
    }

    fn cancel_alarm_raw(&mut self, raw_alarm_id: u32) -> Result<(), OsError> {
        Core::cancel_alarm(self, AlarmId(raw_alarm_id))
    }

    fn task_state(&self, task: TaskId) -> Result<TaskState, OsError> {
        self.tasks
            .get(task.index())
            .map(|t| t.state)
            .ok_or(OsError::InvalidId)
    }

    fn trace_mut(&mut self) -> &mut TraceRecorder {
        &mut self.trace
    }

    fn trace_enabled(&self) -> bool {
        self.trace.is_enabled()
    }
}

impl<W> std::fmt::Debug for Os<W> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Os")
            .field("now", &self.core.now)
            .field("tasks", &self.core.tasks.len())
            .field("alarms", &self.core.alarms.len())
            .field("resources", &self.core.resources.len())
            .field("running", &self.core.running)
            .finish()
    }
}

/// Runtime fields of one [`Tcb`], as captured by [`Os::snapshot`].
#[derive(Debug, Clone, PartialEq, Eq)]
struct TcbSnapshot {
    state: TaskState,
    planned: bool,
    current_priority: Priority,
    set_events: EventMask,
    waiting_for: EventMask,
    held: HeldResources,
    issued: u64,
    completed: u64,
    exec_time: Duration,
    budget_reported: bool,
    ready_key: i64,
}

/// A deterministic capture of kernel runtime state — see [`Os::snapshot`]
/// and [`Os::restore_from`]. Opaque: only meaningful to the OS that (or an
/// identically configured OS to the one that) produced it.
///
/// Plain data (no task bodies, no closures), so node-level snapshots that
/// embed it can be shared across campaign workers.
pub struct OsSnapshot {
    tasks: Vec<TcbSnapshot>,
    task_stamps: Vec<u64>,
    alarms: Vec<AlarmRuntime>,
    alarm_stamps: Vec<u64>,
    resource_holders: Vec<Option<TaskId>>,
    resource_stamp: u64,
    timers: EventQueueSnapshot<KernelEvent>,
    now: Instant,
    running: Option<TaskId>,
    trace: TraceRecorder,
    started: bool,
    next_back_key: i64,
    next_front_key: i64,
    ready_bits: [u64; 4],
    ready_bands: Vec<VecDeque<(i64, TaskId)>>,
    arena: PlanArenaSnapshot,
    busy: Duration,
    /// Kernel epoch at capture; regions stamped `<=` this are clean.
    epoch: u64,
    /// Process-unique snapshot id anchoring the lineage check.
    id: u64,
}

impl Default for OsSnapshot {
    fn default() -> Self {
        OsSnapshot {
            tasks: Vec::new(),
            task_stamps: Vec::new(),
            alarms: Vec::new(),
            alarm_stamps: Vec::new(),
            resource_holders: Vec::new(),
            resource_stamp: 0,
            timers: EventQueueSnapshot::default(),
            now: Instant::ZERO,
            running: None,
            trace: TraceRecorder::new(),
            started: false,
            next_back_key: 0,
            next_front_key: 0,
            ready_bits: [0; 4],
            ready_bands: Vec::new(),
            arena: PlanArenaSnapshot::default(),
            busy: Duration::ZERO,
            epoch: 0,
            id: 0,
        }
    }
}

impl OsSnapshot {
    /// The simulated instant at which the snapshot was taken.
    pub fn taken_at(&self) -> Instant {
        self.now
    }

    /// Appends a canonical, lineage-free rendering of the captured kernel
    /// state to `out`. Timer entries are listed in logical `(time, seq)`
    /// pop order rather than physical wheel layout — a hyperperiod
    /// macro-jump re-buckets the wheel relative to the jumped cursor, so
    /// only the logical view is comparable across fast-forwarded and
    /// event-by-event runs. Equivalence tests hash/compare this rendering.
    pub fn canonical_fmt(&self, out: &mut String) {
        use std::fmt::Write;
        let _ = writeln!(
            out,
            "now={} busy={} running={:?} started={} back={} front={} bits={:?}",
            self.now,
            self.busy,
            self.running,
            self.started,
            self.next_back_key,
            self.next_front_key,
            self.ready_bits,
        );
        for (i, t) in self.tasks.iter().enumerate() {
            let _ = writeln!(
                out,
                "task{i} state={:?} planned={} prio={} ev={} wait={} issued={} completed={} exec={} budget={} key={}",
                t.state,
                t.planned,
                t.current_priority,
                t.set_events,
                t.waiting_for,
                t.issued,
                t.completed,
                t.exec_time,
                t.budget_reported,
                t.ready_key,
            );
        }
        let _ = writeln!(out, "alarms={:?}", self.alarms);
        let _ = writeln!(out, "resources={:?}", self.resource_holders);
        let _ = writeln!(out, "bands={:?}", self.ready_bands);
        let mut entries = Vec::new();
        self.timers.collect_entries(&mut entries);
        let _ = writeln!(
            out,
            "timers cursor={} next_seq={} entries={entries:?}",
            self.timers.cursor_micros(),
            self.timers.next_seq(),
        );
        for (i, slot) in self.arena.slots().iter().enumerate() {
            if !slot.is_empty() {
                let _ = writeln!(out, "plan{i}={slot:?}");
            }
        }
        let _ = writeln!(out, "trace={:?}", self.trace);
    }

    /// Derives the closed-form per-hyperperiod delta between two kernel
    /// images taken exactly `h` apart, writing it into `program` and
    /// returning `true` — or returns `false` when the samples are not
    /// steady-state-equivalent (a behavior-feeding field differs, an event
    /// is pending in one but not the other, a cancellation or behind-cursor
    /// timer entry exists, a counter moved non-uniformly). Every condition
    /// checked here is one the closed-form application of `program` relies
    /// on, so a `true` result plus one guard hyperperiod (derive again from
    /// the next sample and require the identical program) certifies the
    /// jump bit-exactly.
    ///
    /// Reuses `scratch`'s buffers and `program`'s vectors; steady-state
    /// certification allocates nothing once warm.
    pub fn derive_cycle_program(
        a: &OsSnapshot,
        b: &OsSnapshot,
        h: Duration,
        scratch: &mut CycleScratch,
        program: &mut CycleProgram,
    ) -> bool {
        if !a.started
            || !b.started
            || a.running != b.running
            || b.now != a.now + h
            || a.ready_bits != [0; 4]
            || b.ready_bits != [0; 4]
            || !a.ready_bands.iter().all(VecDeque::is_empty)
            || !b.ready_bands.iter().all(VecDeque::is_empty)
            || a.trace.len() != b.trace.len()
            || a.tasks.len() != b.tasks.len()
            || a.alarms != b.alarms
            || a.resource_holders != b.resource_holders
            || !a.arena.content_eq(&b.arena)
            || b.busy < a.busy
        {
            return false;
        }
        program.h = h;
        program.d_busy = b.busy - a.busy;
        program.d_back = b.next_back_key - a.next_back_key;
        program.d_front = b.next_front_key - a.next_front_key;
        program.per_task.clear();
        for (ta, tb) in a.tasks.iter().zip(&b.tasks) {
            // Monotonic counters may advance (uniformly); everything else —
            // including the scheduling state — must be identical.
            if tb.state != ta.state
                || tb.planned != ta.planned
                || tb.current_priority != ta.current_priority
                || tb.set_events != ta.set_events
                || tb.waiting_for != ta.waiting_for
                || tb.held != ta.held
                || tb.exec_time != ta.exec_time
                || tb.budget_reported != ta.budget_reported
                || tb.issued < ta.issued
                || tb.issued - ta.issued != tb.completed.wrapping_sub(ta.completed)
            {
                return false;
            }
            program.per_task.push(TaskCycleDelta {
                d_issued: tb.issued - ta.issued,
                d_ready_key: tb.ready_key - ta.ready_key,
            });
        }
        // Timer wheel: logical content must match entry-for-entry under a
        // uniform (h, d_seq) shift, with deadline-check payloads carrying
        // their task's activation shift. Behind-cursor entries or pending
        // cancellations are transients (e.g. a cancelled alarm's stale
        // expiry) — reject and let the engine back off until they drain.
        let ta = &a.timers;
        let tb = &b.timers;
        if !ta.past_is_empty()
            || !tb.past_is_empty()
            || !ta.cancelled_is_empty()
            || !tb.cancelled_is_empty()
            || tb.cursor_micros() != ta.cursor_micros() + h.as_micros()
            || tb.next_seq() < ta.next_seq()
        {
            return false;
        }
        program.d_seq = tb.next_seq() - ta.next_seq();
        ta.collect_entries(&mut scratch.entries_a);
        tb.collect_entries(&mut scratch.entries_b);
        if scratch.entries_a.len() != scratch.entries_b.len() {
            return false;
        }
        for (&(at, aseq, aev), &(bt, bseq, bev)) in
            scratch.entries_a.iter().zip(&scratch.entries_b)
        {
            if bt != at + h.as_micros() || bseq != aseq + program.d_seq {
                return false;
            }
            let payload_ok = match (aev, bev) {
                (KernelEvent::AlarmExpiry(x), KernelEvent::AlarmExpiry(y)) => x == y,
                (
                    KernelEvent::DeadlineCheck { task: xt, seq: xs },
                    KernelEvent::DeadlineCheck { task: yt, seq: ys },
                ) => xt == yt && ys == xs + program.per_task[xt.index()].d_issued,
                _ => false,
            };
            if !payload_ok {
                return false;
            }
        }
        true
    }
}

/// Per-task component of a [`CycleProgram`]: the per-hyperperiod advance of
/// the task's monotonic activation counter and ready-key cursor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
struct TaskCycleDelta {
    d_issued: u64,
    d_ready_key: i64,
}

/// The compiled steady-state schedule: the closed-form state delta one
/// hyperperiod of kernel execution applies, derived by
/// [`OsSnapshot::derive_cycle_program`] and applied k-at-a-time by
/// [`Os::apply_cycle_program`]. Two programs comparing equal (the guard
/// hyperperiod's requirement) proves the event stream reproduced itself.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct CycleProgram {
    h: Duration,
    d_busy: Duration,
    d_back: i64,
    d_front: i64,
    d_seq: u64,
    per_task: Vec<TaskCycleDelta>,
}

/// Reusable buffers for [`OsSnapshot::derive_cycle_program`]'s logical
/// timer-entry comparison; keep one per macro-stepping engine so warm
/// certification attempts allocate nothing.
#[derive(Debug, Default)]
pub struct CycleScratch {
    entries_a: Vec<(u64, u64, KernelEvent)>,
    entries_b: Vec<(u64, u64, KernelEvent)>,
}

impl std::fmt::Debug for OsSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("OsSnapshot")
            .field("now", &self.now)
            .field("tasks", &self.tasks.len())
            .field("running", &self.running)
            .field("started", &self.started)
            .field("epoch", &self.epoch)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::Plan;

    type W = Vec<String>;

    fn log_body(
        label: &'static str,
        cost: Duration,
    ) -> impl FnMut(Instant, &W) -> Plan<W> + Send {
        move |_now, _w| {
            Plan::new().compute(cost).effect(move |w: &mut W, ctx| {
                w.push(format!("{label}@{}", ctx.now().as_micros()));
            })
        }
    }

    fn ms(n: u64) -> Duration {
        Duration::from_millis(n)
    }
    fn us(n: u64) -> Duration {
        Duration::from_micros(n)
    }

    #[test]
    fn cyclic_alarm_activates_task_periodically() {
        let mut os: Os<W> = Os::new();
        let t = os.add_task(TaskConfig::new("p", Priority(1)), log_body("p", us(100)));
        let a = os.add_alarm("cyc", AlarmAction::ActivateTask(t));
        let mut w = W::new();
        os.start(&mut w);
        os.set_rel_alarm(a, ms(10), Some(ms(10))).unwrap();
        os.run_until(Instant::from_millis(55), &mut w);
        assert_eq!(w.len(), 5, "{w:?}");
        assert_eq!(w[0], "p@10100");
    }

    #[test]
    fn higher_priority_task_preempts_lower() {
        let mut os: Os<W> = Os::new();
        let lo = os.add_task(TaskConfig::new("lo", Priority(1)), log_body("lo", ms(10)));
        let hi = os.add_task(TaskConfig::new("hi", Priority(5)), log_body("hi", us(500)));
        let a_lo = os.add_alarm("alo", AlarmAction::ActivateTask(lo));
        let a_hi = os.add_alarm("ahi", AlarmAction::ActivateTask(hi));
        let mut w = W::new();
        os.start(&mut w);
        os.set_rel_alarm(a_lo, ms(1), None).unwrap();
        os.set_rel_alarm(a_hi, ms(5), None).unwrap();
        os.run_until(Instant::from_millis(20), &mut w);
        // hi runs 5.0–5.5ms; lo resumes and finishes at 11.5ms.
        assert_eq!(w, vec!["hi@5500".to_string(), "lo@11500".to_string()]);
        assert_eq!(os.trace().count_kind("preempt"), 1);
    }

    #[test]
    fn non_preemptable_task_defers_higher_priority() {
        let mut os: Os<W> = Os::new();
        let lo = os.add_task(
            TaskConfig::new("lo", Priority(1)).non_preemptable(),
            log_body("lo", ms(10)),
        );
        let hi = os.add_task(TaskConfig::new("hi", Priority(5)), log_body("hi", us(500)));
        let a_lo = os.add_alarm("alo", AlarmAction::ActivateTask(lo));
        let a_hi = os.add_alarm("ahi", AlarmAction::ActivateTask(hi));
        let mut w = W::new();
        os.start(&mut w);
        os.set_rel_alarm(a_lo, ms(1), None).unwrap();
        os.set_rel_alarm(a_hi, ms(5), None).unwrap();
        os.run_until(Instant::from_millis(20), &mut w);
        assert_eq!(w, vec!["lo@11000".to_string(), "hi@11500".to_string()]);
        assert_eq!(os.trace().count_kind("preempt"), 0);
    }

    #[test]
    fn equal_priority_is_fifo_and_non_preemptive() {
        let mut os: Os<W> = Os::new();
        let a = os.add_task(TaskConfig::new("a", Priority(2)), log_body("a", ms(2)));
        let b = os.add_task(TaskConfig::new("b", Priority(2)), log_body("b", ms(2)));
        let al_a = os.add_alarm("aa", AlarmAction::ActivateTask(a));
        let al_b = os.add_alarm("ab", AlarmAction::ActivateTask(b));
        let mut w = W::new();
        os.start(&mut w);
        os.set_rel_alarm(al_a, ms(1), None).unwrap();
        os.set_rel_alarm(al_b, ms(2), None).unwrap(); // during a's execution
        os.run_until(Instant::from_millis(10), &mut w);
        assert_eq!(w, vec!["a@3000".to_string(), "b@5000".to_string()]);
    }

    #[test]
    fn preempted_task_reenters_front_of_its_band() {
        let mut os: Os<W> = Os::new();
        let a = os.add_task(TaskConfig::new("a", Priority(2)), log_body("a", ms(4)));
        let b = os.add_task(TaskConfig::new("b", Priority(2)), log_body("b", ms(1)));
        let hi = os.add_task(TaskConfig::new("hi", Priority(9)), log_body("hi", ms(1)));
        let al_a = os.add_alarm("aa", AlarmAction::ActivateTask(a));
        let al_b = os.add_alarm("ab", AlarmAction::ActivateTask(b));
        let al_h = os.add_alarm("ah", AlarmAction::ActivateTask(hi));
        let mut w = W::new();
        os.start(&mut w);
        os.set_rel_alarm(al_a, ms(1), None).unwrap();
        os.set_rel_alarm(al_b, ms(2), None).unwrap(); // queued behind a
        os.set_rel_alarm(al_h, ms(3), None).unwrap(); // preempts a
        os.run_until(Instant::from_millis(20), &mut w);
        // After hi (3-4ms), a resumes before b despite b being activated.
        assert_eq!(
            w,
            vec!["hi@4000".to_string(), "a@6000".to_string(), "b@7000".to_string()]
        );
    }

    #[test]
    fn multiple_activations_queue_up_to_limit() {
        let mut os: Os<W> = Os::new();
        let t = os.add_task(
            TaskConfig::new("t", Priority(1)).with_max_activations(2),
            log_body("t", ms(8)),
        );
        let a = os.add_alarm("a", AlarmAction::ActivateTask(t));
        let mut w = W::new();
        os.start(&mut w);
        // Period 5ms < execution 8ms: activations pile up, third is lost.
        os.set_rel_alarm(a, ms(5), Some(ms(5))).unwrap();
        os.run_until(Instant::from_millis(30), &mut w);
        assert!(os.trace().count_kind("os_error") > 0, "activation limit reported");
        assert!(!w.is_empty());
    }

    #[test]
    fn extended_task_waits_and_wakes_on_event() {
        let mut os: Os<W> = Os::new();
        let waiter_body = |_now: Instant, _w: &W| {
            Plan::new()
                .effect(|w: &mut W, ctx| w.push(format!("before@{}", ctx.now().as_micros())))
                .step(Step::WaitEvent(EventMask::bit(0)))
                .effect(|w: &mut W, ctx| w.push(format!("after@{}", ctx.now().as_micros())))
        };
        let waiter = os.add_task(
            TaskConfig::new("waiter", Priority(3))
                .with_kind(TaskKind::Extended)
                .autostart(),
            waiter_body,
        );
        let a = os.add_alarm("wake", AlarmAction::SetEvent(waiter, EventMask::bit(0)));
        let mut w = W::new();
        os.start(&mut w);
        os.set_rel_alarm(a, ms(7), None).unwrap();
        os.run_until(Instant::from_millis(10), &mut w);
        assert_eq!(w, vec!["before@0".to_string(), "after@7000".to_string()]);
        assert_eq!(os.task_state(waiter).unwrap(), TaskState::Suspended);
    }

    #[test]
    fn wait_with_pending_event_does_not_block() {
        let mut os: Os<W> = Os::new();
        let t = os.add_task(
            TaskConfig::new("t", Priority(1)).with_kind(TaskKind::Extended),
            |_now: Instant, _w: &W| {
                Plan::new()
                    .step(Step::WaitEvent(EventMask::bit(1)))
                    .effect(|w: &mut W, _| w.push("ran".into()))
            },
        );
        let mut w = W::new();
        os.start(&mut w);
        os.activate_task(t, &mut w).unwrap();
        // Event set while the task is ready (before it reaches WaitEvent).
        os.set_event(t, EventMask::bit(1), &mut w).unwrap();
        os.run_until(Instant::from_millis(1), &mut w);
        assert_eq!(w, vec!["ran".to_string()]);
    }

    #[test]
    fn deadline_miss_is_reported_exactly_once_per_late_activation() {
        let mut os: Os<W> = Os::new();
        let t = os.add_task(
            TaskConfig::new("t", Priority(1)).with_deadline(ms(5)),
            log_body("t", ms(8)),
        );
        let a = os.add_alarm("a", AlarmAction::ActivateTask(t));
        let mut w = W::new();
        os.start(&mut w);
        os.set_rel_alarm(a, ms(1), None).unwrap();
        os.run_until(Instant::from_millis(20), &mut w);
        assert_eq!(os.trace().count_kind("deadline_miss"), 1);
        let miss = os.trace().first_of_kind("deadline_miss").unwrap();
        assert_eq!(miss.at, Instant::from_millis(6));
    }

    #[test]
    fn meeting_deadline_reports_nothing() {
        let mut os: Os<W> = Os::new();
        let t = os.add_task(
            TaskConfig::new("t", Priority(1)).with_deadline(ms(5)),
            log_body("t", ms(2)),
        );
        let a = os.add_alarm("a", AlarmAction::ActivateTask(t));
        let mut w = W::new();
        os.start(&mut w);
        os.set_rel_alarm(a, ms(1), Some(ms(10))).unwrap();
        os.run_until(Instant::from_millis(50), &mut w);
        assert_eq!(os.trace().count_kind("deadline_miss"), 0);
    }

    #[test]
    fn budget_overrun_fires_at_exact_crossing() {
        let mut os: Os<W> = Os::new();
        let t = os.add_task(
            TaskConfig::new("t", Priority(1)).with_execution_budget(ms(3)),
            log_body("t", ms(10)),
        );
        let a = os.add_alarm("a", AlarmAction::ActivateTask(t));
        let mut w = W::new();
        os.start(&mut w);
        os.set_rel_alarm(a, ms(1), None).unwrap();
        os.run_until(Instant::from_millis(20), &mut w);
        assert_eq!(os.trace().count_kind("budget_exceeded"), 1);
        let e = os.trace().first_of_kind("budget_exceeded").unwrap();
        assert_eq!(e.at, Instant::from_millis(4)); // activated at 1ms + 3ms budget
    }

    #[test]
    fn resource_ceiling_blocks_mid_priority_interference() {
        // lo takes R (ceiling hi); mid is activated meanwhile; with the
        // ceiling protocol, mid must not run until lo releases R.
        let mut os: Os<W> = Os::new();
        let r = ResourceId(0);
        let lo = os.add_task(TaskConfig::new("lo", Priority(1)), move |_n: Instant, _w: &W| {
            Plan::new()
                .step(Step::GetResource(r))
                .compute(ms(5))
                .step(Step::ReleaseResource(r))
                .effect(|w: &mut W, ctx| w.push(format!("lo@{}", ctx.now().as_micros())))
        });
        let mid = os.add_task(TaskConfig::new("mid", Priority(3)), log_body("mid", ms(1)));
        let _ = os.add_resource("R", Priority(5));
        let a_lo = os.add_alarm("alo", AlarmAction::ActivateTask(lo));
        let a_mid = os.add_alarm("amid", AlarmAction::ActivateTask(mid));
        let mut w = W::new();
        os.start(&mut w);
        os.set_rel_alarm(a_lo, ms(1), None).unwrap();
        os.set_rel_alarm(a_mid, ms(2), None).unwrap();
        os.run_until(Instant::from_millis(20), &mut w);
        // Without the ceiling, mid would preempt lo at 2ms and log at 3000.
        // With it, mid is deferred to the release point (6ms), runs 6–7ms,
        // and lo's post-release effect then executes at 7ms.
        assert_eq!(w, vec!["mid@7000".to_string(), "lo@7000".to_string()]);
        assert_eq!(os.trace().count_kind("preempt"), 1); // only at release
    }

    #[test]
    fn lifo_violation_reports_resource_error() {
        let mut os: Os<W> = Os::new();
        let r0 = ResourceId(0);
        let r1 = ResourceId(1);
        let t = os.add_task(TaskConfig::new("t", Priority(1)), move |_n: Instant, _w: &W| {
            Plan::new()
                .step(Step::GetResource(r0))
                .step(Step::GetResource(r1))
                .step(Step::ReleaseResource(r0)) // out of order
                .step(Step::ReleaseResource(r1))
                .step(Step::ReleaseResource(r0))
        });
        os.add_resource("R0", Priority(5));
        os.add_resource("R1", Priority(5));
        let mut w = W::new();
        os.start(&mut w);
        os.activate_task(t, &mut w).unwrap();
        os.run_until(Instant::from_millis(1), &mut w);
        assert_eq!(os.trace().count_kind("os_error"), 1);
    }

    #[test]
    fn terminating_with_held_resource_releases_and_reports() {
        let mut os: Os<W> = Os::new();
        let r0 = ResourceId(0);
        let t = os.add_task(TaskConfig::new("t", Priority(1)), move |_n: Instant, _w: &W| {
            Plan::new().step(Step::GetResource(r0)).compute(ms(1))
        });
        os.add_resource("R0", Priority(5));
        let mut w = W::new();
        os.start(&mut w);
        os.activate_task(t, &mut w).unwrap();
        os.run_until(Instant::from_millis(5), &mut w);
        assert_eq!(os.trace().count_kind("os_error"), 1);
        // Resource is free again: re-running the task must not error twice
        // because of a stuck resource.
        os.activate_task(t, &mut w).unwrap();
        os.run_until(Instant::from_millis(10), &mut w);
        assert_eq!(os.trace().count_kind("os_error"), 2); // same error, fresh run
    }

    #[test]
    fn chain_task_terminates_and_activates() {
        let mut os: Os<W> = Os::new();
        // b logs, a chains to b.
        let b = os.add_task(TaskConfig::new("b", Priority(1)), log_body("b", ms(1)));
        let a = os.add_task(TaskConfig::new("a", Priority(2)), move |_n: Instant, _w: &W| {
            Plan::new().compute(ms(1)).step(Step::ChainTask(b))
        });
        let mut w = W::new();
        os.start(&mut w);
        os.activate_task(a, &mut w).unwrap();
        os.run_until(Instant::from_millis(5), &mut w);
        assert_eq!(w, vec!["b@2000".to_string()]);
        assert_eq!(os.task_state(a).unwrap(), TaskState::Suspended);
    }

    #[test]
    fn hooks_observe_lifecycle() {
        use std::sync::{Arc, Mutex};
        let seen: Arc<Mutex<Vec<String>>> = Arc::new(Mutex::new(Vec::new()));
        let sink = Arc::clone(&seen);
        let mut os: Os<W> = Os::new();
        let t = os.add_task(TaskConfig::new("t", Priority(1)), log_body("t", ms(1)));
        os.add_observer(move |_now: Instant, ev: HookEvent, _w: &mut W| {
            sink.lock().unwrap().push(ev.to_string());
        });
        let mut w = W::new();
        os.start(&mut w);
        os.activate_task(t, &mut w).unwrap();
        os.run_until(Instant::from_millis(5), &mut w);
        let log = seen.lock().unwrap();
        assert_eq!(
            *log,
            vec![
                "startup".to_string(),
                format!("activate {t}"),
                format!("pre-task {t}"),
                format!("terminate {t}"),
            ]
        );
    }

    #[test]
    fn utilization_accounts_busy_time() {
        let mut os: Os<W> = Os::new();
        let t = os.add_task(TaskConfig::new("t", Priority(1)), log_body("t", ms(5)));
        let a = os.add_alarm("a", AlarmAction::ActivateTask(t));
        let mut w = W::new();
        os.start(&mut w);
        os.set_rel_alarm(a, ms(10), Some(ms(10))).unwrap();
        os.run_until(Instant::from_millis(100), &mut w);
        let u = os.utilization();
        assert!((u - 0.5).abs() < 0.06, "expected ~50% utilisation, got {u}");
    }

    #[test]
    fn cancelled_alarm_does_not_fire() {
        let mut os: Os<W> = Os::new();
        let t = os.add_task(TaskConfig::new("t", Priority(1)), log_body("t", ms(1)));
        let a = os.add_alarm("a", AlarmAction::ActivateTask(t));
        let mut w = W::new();
        os.start(&mut w);
        os.set_rel_alarm(a, ms(10), Some(ms(10))).unwrap();
        os.run_until(Instant::from_millis(15), &mut w);
        os.cancel_alarm(a).unwrap();
        os.run_until(Instant::from_millis(60), &mut w);
        assert_eq!(w.len(), 1, "only the first expiry fires: {w:?}");
    }

    #[test]
    fn set_rel_alarm_validates_arguments() {
        let mut os: Os<W> = Os::new();
        let t = os.add_task(TaskConfig::new("t", Priority(1)), log_body("t", ms(1)));
        let a = os.add_alarm("a", AlarmAction::ActivateTask(t));
        assert_eq!(
            os.set_rel_alarm(AlarmId(9), ms(1), None),
            Err(OsError::InvalidId)
        );
        assert_eq!(
            os.set_rel_alarm(a, Duration::ZERO, None),
            Err(OsError::InvalidValue)
        );
        os.set_rel_alarm(a, ms(1), None).unwrap();
        assert_eq!(os.set_rel_alarm(a, ms(1), None), Err(OsError::InvalidState));
        assert_eq!(os.cancel_alarm(AlarmId(9)), Err(OsError::InvalidId));
        os.cancel_alarm(a).unwrap();
        assert_eq!(os.cancel_alarm(a), Err(OsError::AlarmNotInUse));
    }

    #[test]
    fn set_event_on_basic_task_is_access_error() {
        let mut os: Os<W> = Os::new();
        let t = os.add_task(TaskConfig::new("t", Priority(1)), log_body("t", ms(1)));
        let mut w = W::new();
        os.start(&mut w);
        os.activate_task(t, &mut w).unwrap();
        assert_eq!(
            os.set_event(t, EventMask::bit(0), &mut w),
            Err(OsError::InvalidAccess)
        );
    }

    #[test]
    fn snapshot_restore_replays_identically() {
        // Run a preemption-heavy scene to 5 ms, snapshot, run to 20 ms;
        // then restore and re-run: world effects and the kernel trace must
        // replay byte-for-byte, including mid-flight plans and timers.
        // Bodies use arena EffectRef tokens — boxed-closure plans cannot be
        // snapshotted (arena_snapshot_rejects_boxed_effects pins that).
        struct RefLogBody {
            label: &'static str,
            cost: Duration,
        }
        impl TaskBody<W> for RefLogBody {
            fn plan_into(&mut self, _now: Instant, _w: &W, out: &mut Plan<W>) {
                out.push_compute(self.cost);
                out.push_effect_ref(0);
            }
            fn run_effect(&mut self, _token: u32, w: &mut W, ctx: &mut EffectCtx<'_, W>) {
                w.push(format!("{}@{}", self.label, ctx.now().as_micros()));
            }
            fn name(&self) -> &str {
                self.label
            }
        }
        let mut os: Os<W> = Os::new();
        let hi = os.add_task(
            TaskConfig::new("hi", Priority(9)),
            RefLogBody { label: "hi", cost: ms(1) },
        );
        let lo = os.add_task(
            TaskConfig::new("lo", Priority(1)),
            RefLogBody { label: "lo", cost: ms(4) },
        );
        let a_hi = os.add_alarm("a_hi", AlarmAction::ActivateTask(hi));
        let a_lo = os.add_alarm("a_lo", AlarmAction::ActivateTask(lo));
        let mut w = W::new();
        os.start(&mut w);
        os.set_rel_alarm(a_hi, ms(3), Some(ms(3))).unwrap();
        os.set_rel_alarm(a_lo, ms(2), Some(ms(7))).unwrap();
        os.run_until(Instant::from_millis(5), &mut w);
        let snap = os.snapshot();
        let world_mark = w.len();
        os.run_until(Instant::from_millis(20), &mut w);
        let tail: Vec<String> = w[world_mark..].to_vec();
        let trace_once = format!("{:?}", os.trace());

        // The kernel does not own the world; the caller restores it (here:
        // truncate back to the snapshot point).
        os.restore_from(&snap);
        assert_eq!(os.now(), Instant::from_millis(5));
        let mut w2: W = w[..world_mark].to_vec();
        os.run_until(Instant::from_millis(20), &mut w2);
        assert_eq!(&w2[world_mark..], &tail[..], "world effects diverge after restore");
        assert_eq!(format!("{:?}", os.trace()), trace_once, "trace diverges after restore");
    }

    #[test]
    fn delta_restore_skips_clean_regions_and_replays_identically() {
        // Three tasks, but the post-snapshot tail only ever runs one of
        // them: the delta restore must skip the untouched TCBs/alarms yet
        // replay exactly like the full restore a fresh lineage forces.
        // Bodies plan EffectRef tokens: boxed-closure plans cannot be
        // snapshotted.
        struct RefBody {
            label: &'static str,
            cost: Duration,
        }
        impl TaskBody<W> for RefBody {
            fn plan_into(&mut self, _now: Instant, _w: &W, out: &mut Plan<W>) {
                out.push_compute(self.cost);
                out.push_effect_ref(0);
            }
            fn run_effect(&mut self, _token: u32, w: &mut W, ctx: &mut EffectCtx<'_, W>) {
                w.push(format!("{}@{}", self.label, ctx.now().as_micros()));
            }
            fn name(&self) -> &str {
                self.label
            }
        }
        let body = |label, cost| RefBody { label, cost };
        let mut os: Os<W> = Os::new();
        let active = os.add_task(TaskConfig::new("act", Priority(5)), body("act", us(100)));
        let _idle_a = os.add_task(TaskConfig::new("ia", Priority(1)), body("ia", us(100)));
        let _idle_b = os.add_task(TaskConfig::new("ib", Priority(2)), body("ib", us(100)));
        let a_act = os.add_alarm("a_act", AlarmAction::ActivateTask(active));
        let a_idle = os.add_alarm("a_idle", AlarmAction::ActivateTask(_idle_a));
        let mut w = W::new();
        os.start(&mut w);
        os.set_rel_alarm(a_act, ms(1), Some(ms(1))).unwrap();
        let _ = a_idle; // declared but never armed: stays clean
        os.run_until(Instant::from_millis(5), &mut w);
        let snap = os.snapshot();
        let world_mark = w.len();
        os.run_until(Instant::from_millis(9), &mut w);
        let tail: Vec<String> = w[world_mark..].to_vec();

        // Same lineage: delta path skips the two idle TCBs and the idle
        // alarm (3 task regions + 2 alarm regions + 1 resource region
        // examined, some skipped).
        let stats = os.restore_from(&snap);
        assert!(
            stats.regions_copied < stats.regions_total,
            "delta restore should skip clean regions: {stats:?}"
        );
        let mut w2: W = w[..world_mark].to_vec();
        os.run_until(Instant::from_millis(9), &mut w2);
        assert_eq!(&w2[world_mark..], &tail[..], "delta restore diverges");

        // A reset severs the lineage: the next restore copies everything,
        // and still replays identically.
        os.reset();
        let stats = os.restore_from(&snap);
        assert_eq!(
            stats.regions_copied, stats.regions_total,
            "restore after reset must take the full path"
        );
        let mut w3: W = w[..world_mark].to_vec();
        os.run_until(Instant::from_millis(9), &mut w3);
        assert_eq!(&w3[world_mark..], &tail[..], "full restore diverges");
    }

    #[test]
    fn effect_direct_activation_matches_legacy_request_semantics() {
        // Through the direct-call API the activation executes synchronously
        // inside the effect; preemption by the higher-priority peer only
        // materialises at the next scheduling decision, after the step —
        // the same observable outcome the retired request-queue shim had.
        let mut os: Os<W> = Os::new();
        let b = os.add_task(TaskConfig::new("b", Priority(9)), log_body("b", ms(1)));
        let a = os.add_task(TaskConfig::new("a", Priority(1)), move |_n: Instant, _w: &W| {
            Plan::new()
                .effect(move |w: &mut W, ctx| ctx.activate_task(b, w).unwrap())
                .compute(ms(5))
                .effect(|w: &mut W, ctx| w.push(format!("a@{}", ctx.now().as_micros())))
        });
        let mut w = W::new();
        os.start(&mut w);
        os.activate_task(a, &mut w).unwrap();
        os.run_until(Instant::from_millis(10), &mut w);
        assert_eq!(w, vec!["b@1000".to_string(), "a@6000".to_string()]);
        // The direct call went through the same kernel path: activation
        // traces for os start, a and b.
        assert_eq!(os.trace().count_kind("activate"), 2);
    }

    #[test]
    fn arena_body_calls_services_directly_in_place() {
        // An arena-backed body (plan_into + EffectRef) exercises the whole
        // split-borrow path: run_effect executes on the body in place and
        // activates a peer task synchronously through its KernelServices.
        struct Chainer {
            peer: Option<TaskId>,
            fired: u32,
        }
        impl TaskBody<W> for Chainer {
            fn plan_into(&mut self, _now: Instant, _world: &W, out: &mut Plan<W>) {
                out.push_compute(Duration::from_millis(1));
                out.push_effect_ref(0);
            }
            fn run_effect(&mut self, token: u32, world: &mut W, ctx: &mut EffectCtx<'_, W>) {
                assert_eq!(token, 0);
                self.fired += 1;
                world.push(format!("chainer@{}", ctx.now().as_micros()));
                if let Some(peer) = self.peer {
                    ctx.activate_task(peer, world).unwrap();
                    assert_eq!(
                        ctx.kernel().unwrap().task_state(peer),
                        Ok(TaskState::Ready)
                    );
                }
            }
            fn name(&self) -> &str {
                "chainer"
            }
        }
        let mut os: Os<W> = Os::new();
        let peer = os.add_task(TaskConfig::new("peer", Priority(1)), log_body("peer", ms(1)));
        let chainer = os.add_task(
            TaskConfig::new("chainer", Priority(5)),
            Chainer { peer: Some(peer), fired: 0 },
        );
        let mut w = W::new();
        os.start(&mut w);
        os.activate_task(chainer, &mut w).unwrap();
        os.run_until(Instant::from_millis(10), &mut w);
        assert_eq!(w, vec!["chainer@1000".to_string(), "peer@2000".to_string()]);
    }

    #[test]
    fn find_task_and_names() {
        let mut os: Os<W> = Os::new();
        let t = os.add_task(TaskConfig::new("SafeSpeedTask", Priority(1)), log_body("x", ms(1)));
        assert_eq!(os.find_task("SafeSpeedTask"), Some(t));
        assert_eq!(os.find_task("nope"), None);
        assert_eq!(os.task_name(t).unwrap(), "SafeSpeedTask");
        assert_eq!(os.task_name(TaskId(9)), Err(OsError::InvalidId));
        assert_eq!(os.task_state(TaskId(9)), Err(OsError::InvalidId));
    }

    #[test]
    fn run_until_is_resumable_across_calls() {
        let mut os: Os<W> = Os::new();
        let t = os.add_task(TaskConfig::new("t", Priority(1)), log_body("t", ms(10)));
        let mut w = W::new();
        os.start(&mut w);
        os.activate_task(t, &mut w).unwrap();
        // Split the 10ms execution across three run_until calls.
        os.run_until(Instant::from_millis(3), &mut w);
        assert!(w.is_empty());
        os.run_until(Instant::from_millis(7), &mut w);
        assert!(w.is_empty());
        os.run_until(Instant::from_millis(12), &mut w);
        assert_eq!(w, vec!["t@10000".to_string()]);
    }
}

#[cfg(test)]
mod schedule_tests {
    use super::*;
    use crate::plan::Plan;

    type W = Vec<String>;
    fn ms(n: u64) -> Duration {
        Duration::from_millis(n)
    }

    #[test]
    fn schedule_yields_inside_non_preemptable_task() {
        let mut os: Os<W> = Os::new();
        let hi = os.add_task(TaskConfig::new("hi", Priority(9)), |_: Instant, _: &W| {
            Plan::new()
                .compute(ms(1))
                .effect(|w: &mut W, ctx| w.push(format!("hi@{}", ctx.now().as_micros())))
        });
        let lo = os.add_task(
            TaskConfig::new("lo", Priority(1)).non_preemptable(),
            |_: Instant, _: &W| {
                Plan::new()
                    .compute(ms(4))
                    .step(Step::Schedule)
                    .compute(ms(4))
                    .effect(|w: &mut W, ctx| w.push(format!("lo@{}", ctx.now().as_micros())))
            },
        );
        let a_lo = os.add_alarm("alo", AlarmAction::ActivateTask(lo));
        let a_hi = os.add_alarm("ahi", AlarmAction::ActivateTask(hi));
        let mut w = W::new();
        os.start(&mut w);
        os.set_rel_alarm(a_lo, ms(1), None).unwrap();
        os.set_rel_alarm(a_hi, ms(2), None).unwrap(); // during lo's first half
        os.run_until(Instant::from_millis(20), &mut w);
        // Without Schedule, hi would wait until lo terminates (9ms);
        // with it, hi runs at the explicit scheduling point (5ms).
        assert_eq!(w, vec!["hi@6000".to_string(), "lo@10000".to_string()]);
    }

    #[test]
    fn schedule_is_noop_without_higher_priority_work() {
        let mut os: Os<W> = Os::new();
        let t = os.add_task(
            TaskConfig::new("t", Priority(5)).non_preemptable(),
            |_: Instant, _: &W| {
                Plan::new()
                    .compute(ms(1))
                    .step(Step::Schedule)
                    .compute(ms(1))
                    .effect(|w: &mut W, ctx| w.push(format!("t@{}", ctx.now().as_micros())))
            },
        );
        let mut w = W::new();
        os.start(&mut w);
        os.activate_task(t, &mut w).unwrap();
        os.run_until(Instant::from_millis(5), &mut w);
        assert_eq!(w, vec!["t@2000".to_string()]);
        assert_eq!(os.trace().count_kind("preempt"), 0);
    }
}

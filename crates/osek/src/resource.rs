//! Resources with the OSEK priority-ceiling protocol.
//!
//! Taking a resource raises the task to the resource's ceiling priority so
//! no other task that might take the same resource can preempt it; release
//! must follow LIFO order. Resource blocking is one of the two timing-fault
//! categories in the paper's functional design ("an object hangs as a result
//! of a requested resource being blocked") — the fault injectors exercise
//! exactly this path.

use crate::plan::ResourceId;
use crate::task::{Priority, TaskId};
use serde::{Deserialize, Serialize};

/// Static configuration and runtime state of one resource.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Resource {
    name: String,
    ceiling: Priority,
    holder: Option<TaskId>,
}

impl Resource {
    /// Creates a free resource with the given ceiling priority.
    pub fn new(name: impl Into<String>, ceiling: Priority) -> Self {
        Resource {
            name: name.into(),
            ceiling,
            holder: None,
        }
    }

    /// Resource name for traces.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Ceiling priority (must be ≥ the priority of every task using it).
    pub fn ceiling(&self) -> Priority {
        self.ceiling
    }

    /// The current holder, if occupied.
    pub fn holder(&self) -> Option<TaskId> {
        self.holder
    }

    /// `true` if some task occupies the resource.
    pub fn is_occupied(&self) -> bool {
        self.holder.is_some()
    }

    /// Marks the resource taken by `task` (kernel-internal).
    pub fn occupy(&mut self, task: TaskId) {
        debug_assert!(self.holder.is_none(), "resource double-occupied");
        self.holder = Some(task);
    }

    /// Marks the resource free (kernel-internal).
    pub fn release(&mut self) {
        self.holder = None;
    }
}

/// Per-task stack of held resources, enforcing LIFO release and tracking the
/// task's elevated priority.
#[derive(Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct HeldResources {
    stack: Vec<(ResourceIdRepr, Priority)>,
}

impl Clone for HeldResources {
    fn clone(&self) -> Self {
        HeldResources {
            stack: self.stack.clone(),
        }
    }

    // Capacity-retained for the TCB snapshot path.
    fn clone_from(&mut self, source: &Self) {
        self.stack.clone_from(&source.stack);
    }
}

// ResourceId lives in plan.rs without serde; keep a raw repr for state
// snapshots.
type ResourceIdRepr = u32;

impl HeldResources {
    /// Creates an empty stack.
    pub fn new() -> Self {
        HeldResources::default()
    }

    /// Pushes a taken resource and the priority the task had *before*
    /// taking it.
    pub fn push(&mut self, id: ResourceId, prior_priority: Priority) {
        self.stack.push((id.0, prior_priority));
    }

    /// Pops the most recently taken resource if it matches `id`; returns the
    /// priority to restore. `None` signals a LIFO-order violation.
    pub fn pop_matching(&mut self, id: ResourceId) -> Option<Priority> {
        match self.stack.last() {
            Some(&(top, prior)) if top == id.0 => {
                self.stack.pop();
                Some(prior)
            }
            _ => None,
        }
    }

    /// `true` if the task holds no resources.
    pub fn is_empty(&self) -> bool {
        self.stack.is_empty()
    }

    /// Number of held resources.
    pub fn len(&self) -> usize {
        self.stack.len()
    }

    /// Ids of held resources, innermost last.
    pub fn ids(&self) -> impl Iterator<Item = ResourceId> + '_ {
        self.stack.iter().map(|&(id, _)| ResourceId(id))
    }

    /// Clears the stack (at task termination after an error).
    pub fn clear(&mut self) {
        self.stack.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn occupy_release_cycle() {
        let mut r = Resource::new("r", Priority(5));
        assert!(!r.is_occupied());
        r.occupy(TaskId(1));
        assert_eq!(r.holder(), Some(TaskId(1)));
        r.release();
        assert!(!r.is_occupied());
    }

    #[test]
    fn held_resources_enforce_lifo() {
        let mut held = HeldResources::new();
        held.push(ResourceId(0), Priority(1));
        held.push(ResourceId(1), Priority(3));
        // Releasing out of order is rejected.
        assert_eq!(held.pop_matching(ResourceId(0)), None);
        // LIFO order restores the pre-acquisition priority.
        assert_eq!(held.pop_matching(ResourceId(1)), Some(Priority(3)));
        assert_eq!(held.pop_matching(ResourceId(0)), Some(Priority(1)));
        assert!(held.is_empty());
    }

    #[test]
    fn pop_from_empty_is_rejected() {
        let mut held = HeldResources::new();
        assert_eq!(held.pop_matching(ResourceId(0)), None);
    }

    #[test]
    fn ids_lists_in_acquisition_order() {
        let mut held = HeldResources::new();
        held.push(ResourceId(2), Priority(0));
        held.push(ResourceId(7), Priority(1));
        let ids: Vec<u32> = held.ids().map(|r| r.0).collect();
        assert_eq!(ids, vec![2, 7]);
        assert_eq!(held.len(), 2);
        held.clear();
        assert!(held.is_empty());
    }
}

//! # easis-osek — an OSEK/VDX operating-system model
//!
//! The EASIS software platform (DSN 2007 Software Watchdog paper, §3.1)
//! integrates "an OSEK-conforming operating system with safety relevant
//! services" across layers L2/L3. This crate is that substrate: a
//! deterministic simulation of an OSEK OS with
//!
//! * basic and extended tasks under fixed-priority full-preemptive
//!   scheduling ([`kernel::Os`]);
//! * counters/alarms for periodic activation ([`alarm`]);
//! * events, resources with priority ceiling ([`resource`]);
//! * startup/pre-task/post-task/error hooks ([`hooks`]) plus
//!   OSEKTime-style deadline monitoring and AUTOSAR-OS-style execution
//!   budgets — the *task-granularity* comparators of the paper's related
//!   work section;
//! * task bodies expressed as preemptible execution [`plan`]s.
//!
//! # Examples
//!
//! ```
//! use easis_osek::alarm::AlarmAction;
//! use easis_osek::kernel::Os;
//! use easis_osek::plan::Plan;
//! use easis_osek::task::{Priority, TaskConfig};
//! use easis_sim::time::{Duration, Instant};
//!
//! // A 10 ms periodic task incrementing a counter in the shared world.
//! let mut os: Os<u64> = Os::new();
//! let task = os.add_task(TaskConfig::new("tick", Priority(1)), |_, _: &u64| {
//!     Plan::new().compute(Duration::from_micros(200)).effect(|w, _| *w += 1)
//! });
//! let alarm = os.add_alarm("cyc", AlarmAction::ActivateTask(task));
//! let mut world = 0;
//! os.start(&mut world);
//! os.set_rel_alarm(alarm, Duration::from_millis(10), Some(Duration::from_millis(10)))?;
//! os.run_until(Instant::from_millis(55), &mut world);
//! assert_eq!(world, 5);
//! # Ok::<(), easis_osek::error::OsError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod alarm;
pub mod error;
pub mod gantt;
pub mod hooks;
pub mod isr;
pub mod kernel;
pub mod plan;
pub mod resource;
pub mod task;

pub use alarm::{Alarm, AlarmAction, AlarmId};
pub use error::OsError;
pub use hooks::{HookEvent, HookObserver};
pub use isr::{IsrId, ISR_PRIORITY};
pub use kernel::Os;
pub use plan::{EffectCtx, KernelServices, Plan, PlanArena, ResourceId, ServiceCore, Step, TaskBody};
pub use resource::Resource;
pub use task::{EventMask, Priority, TaskConfig, TaskId, TaskKind, TaskState};

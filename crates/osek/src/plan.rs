//! Task bodies and execution plans.
//!
//! A task body does not run as native code; when the task is dispatched it
//! *plans* a sequence of [`Step`]s which the kernel then executes under
//! preemptive scheduling. `Compute` steps consume simulated CPU time and can
//! be preempted mid-step; all other steps are instantaneous at the simulated
//! time at which execution reaches them. This mirrors the paper's
//! model-based runnables: function-call subsystems triggered in a defined
//! sequence with auto-generated glue code (heartbeat indications) in between.
//!
//! Bodies are generic over a *world* type `W` — the shared state of the ECU
//! (signal database, dependability services). Effects receive `&mut W` plus
//! an [`EffectCtx`] through which they call OS services
//! ([`EffectCtx::activate_task`], [`EffectCtx::set_event`],
//! [`EffectCtx::cancel_alarm`]) — executed directly and synchronously on the
//! kernel's scheduler core via the split-borrow [`KernelServices`] view.

use crate::error::OsError;
use crate::task::{EventMask, TaskId, TaskState};
use easis_sim::snap::{next_snapshot_id, RestoreStats};
use easis_sim::time::{Duration, Instant};
use easis_sim::trace::TraceRecorder;
use std::collections::VecDeque;
use std::fmt;

/// Resource identifier (index into the OS resource table).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ResourceId(pub u32);

impl fmt::Display for ResourceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "R{}", self.0)
    }
}

/// An instantaneous side effect executed by a task at the current simulated
/// time. Receives the shared world and an [`EffectCtx`] for OS services.
pub type Effect<W> = Box<dyn FnMut(&mut W, &mut EffectCtx<'_, W>) + Send>;

/// One step of a task's execution plan.
pub enum Step<W> {
    /// Consume simulated CPU time. Preemption can occur inside this step.
    Compute(Duration),
    /// Run an instantaneous effect (signal I/O, heartbeat indication, …).
    Effect(Effect<W>),
    /// Run a body-owned effect identified by an opaque token: the kernel
    /// hands the token back to [`TaskBody::run_effect`] on the same body
    /// that planned it. This is the allocation-free alternative to
    /// [`Step::Effect`] — no closure is boxed per activation; the body keeps
    /// its state and dispatches on the token.
    EffectRef(u32),
    /// `ActivateTask` system service.
    ActivateTask(TaskId),
    /// `SetEvent` system service (target must be an extended task).
    SetEvent(TaskId, EventMask),
    /// `WaitEvent` system service — blocks until one of the events is set.
    /// Only valid in extended tasks.
    WaitEvent(EventMask),
    /// `ClearEvent` system service.
    ClearEvent(EventMask),
    /// `GetResource` — occupy a resource (priority-ceiling protocol).
    GetResource(ResourceId),
    /// `ReleaseResource` — release the most recently taken resource.
    ReleaseResource(ResourceId),
    /// `ChainTask` — terminate and immediately activate another task.
    ChainTask(TaskId),
    /// `Schedule` — explicit scheduling point: a non-preemptable task
    /// voluntarily yields to any higher-priority ready task (no-op for
    /// preemptable tasks, which reschedule continuously anyway).
    Schedule,
}

impl<W> Step<W> {
    /// Clones a plain-data step for a state snapshot.
    ///
    /// # Panics
    ///
    /// Panics on [`Step::Effect`]: a boxed closure cannot be duplicated,
    /// so plans containing one are not snapshottable. Arena-backed bodies
    /// plan [`Step::EffectRef`] tokens instead, which snapshot fine — the
    /// campaign node stack is EffectRef-only by construction.
    fn data(&self) -> StepData {
        match self {
            Step::Compute(d) => StepData::Compute(*d),
            Step::Effect(_) => panic!(
                "Step::Effect (boxed closure) cannot be snapshotted; \
                 plan EffectRef tokens for snapshot/restore support"
            ),
            Step::EffectRef(tok) => StepData::EffectRef(*tok),
            Step::ActivateTask(t) => StepData::ActivateTask(*t),
            Step::SetEvent(t, m) => StepData::SetEvent(*t, *m),
            Step::WaitEvent(m) => StepData::WaitEvent(*m),
            Step::ClearEvent(m) => StepData::ClearEvent(*m),
            Step::GetResource(r) => StepData::GetResource(*r),
            Step::ReleaseResource(r) => StepData::ReleaseResource(*r),
            Step::ChainTask(t) => StepData::ChainTask(*t),
            Step::Schedule => StepData::Schedule,
        }
    }
}

/// The closure-free image of a [`Step`], used inside snapshots.
///
/// Snapshots must be shareable across worker threads (`Arc<NodeSnapshot>`
/// in the campaign prefix cache), and `Step::Effect`'s boxed `FnMut` is not
/// `Sync` — so snapshots store this plain-data mirror instead, which covers
/// every variant except `Effect` (see [`Step`]'s snapshot panic note).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepData {
    /// Mirror of [`Step::Compute`].
    Compute(Duration),
    /// Mirror of [`Step::EffectRef`].
    EffectRef(u32),
    /// Mirror of [`Step::ActivateTask`].
    ActivateTask(TaskId),
    /// Mirror of [`Step::SetEvent`].
    SetEvent(TaskId, EventMask),
    /// Mirror of [`Step::WaitEvent`].
    WaitEvent(EventMask),
    /// Mirror of [`Step::ClearEvent`].
    ClearEvent(EventMask),
    /// Mirror of [`Step::GetResource`].
    GetResource(ResourceId),
    /// Mirror of [`Step::ReleaseResource`].
    ReleaseResource(ResourceId),
    /// Mirror of [`Step::ChainTask`].
    ChainTask(TaskId),
    /// Mirror of [`Step::Schedule`].
    Schedule,
}

impl StepData {
    /// Re-instantiates the executable step for any world type.
    fn to_step<W>(self) -> Step<W> {
        match self {
            StepData::Compute(d) => Step::Compute(d),
            StepData::EffectRef(tok) => Step::EffectRef(tok),
            StepData::ActivateTask(t) => Step::ActivateTask(t),
            StepData::SetEvent(t, m) => Step::SetEvent(t, m),
            StepData::WaitEvent(m) => Step::WaitEvent(m),
            StepData::ClearEvent(m) => Step::ClearEvent(m),
            StepData::GetResource(r) => Step::GetResource(r),
            StepData::ReleaseResource(r) => Step::ReleaseResource(r),
            StepData::ChainTask(t) => Step::ChainTask(t),
            StepData::Schedule => Step::Schedule,
        }
    }
}

impl<W> fmt::Debug for Step<W> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Step::Compute(d) => write!(f, "Compute({d})"),
            Step::Effect(_) => write!(f, "Effect(..)"),
            Step::EffectRef(tok) => write!(f, "EffectRef({tok})"),
            Step::ActivateTask(t) => write!(f, "ActivateTask({t})"),
            Step::SetEvent(t, m) => write!(f, "SetEvent({t}, {m})"),
            Step::WaitEvent(m) => write!(f, "WaitEvent({m})"),
            Step::ClearEvent(m) => write!(f, "ClearEvent({m})"),
            Step::GetResource(r) => write!(f, "GetResource({r})"),
            Step::ReleaseResource(r) => write!(f, "ReleaseResource({r})"),
            Step::ChainTask(t) => write!(f, "ChainTask({t})"),
            Step::Schedule => write!(f, "Schedule"),
        }
    }
}

/// An ordered sequence of steps; what a task executes for one activation.
pub struct Plan<W> {
    steps: VecDeque<Step<W>>,
}

impl<W> fmt::Debug for Plan<W> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Plan").field("steps", &self.steps).finish()
    }
}

impl<W> Default for Plan<W> {
    fn default() -> Self {
        Plan {
            steps: VecDeque::new(),
        }
    }
}

impl<W> Plan<W> {
    /// Creates an empty plan (the task terminates immediately).
    pub fn new() -> Self {
        Plan::default()
    }

    /// Appends a compute step.
    pub fn compute(mut self, d: Duration) -> Self {
        self.steps.push_back(Step::Compute(d));
        self
    }

    /// Appends an instantaneous effect.
    pub fn effect(mut self, f: impl FnMut(&mut W, &mut EffectCtx<'_, W>) + Send + 'static) -> Self {
        self.steps.push_back(Step::Effect(Box::new(f)));
        self
    }

    /// Appends an arbitrary step.
    pub fn step(mut self, s: Step<W>) -> Self {
        self.steps.push_back(s);
        self
    }

    /// Appends all steps of `other`.
    pub fn extend(mut self, other: Plan<W>) -> Self {
        self.steps.extend(other.steps);
        self
    }

    /// Number of remaining steps.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// `true` if no steps remain.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// Removes and returns the next step.
    pub fn pop(&mut self) -> Option<Step<W>> {
        self.steps.pop_front()
    }

    /// Puts a step back at the front (used when a `Compute` is preempted
    /// with remaining work).
    pub fn push_front(&mut self, s: Step<W>) {
        self.steps.push_front(s);
    }

    // ------------------------------------------------------------------
    // In-place mutation API (arena-backed bodies fill a retained buffer
    // instead of building a fresh plan per activation)
    // ------------------------------------------------------------------

    /// Removes all steps, retaining the allocated capacity. This is what
    /// makes a [`PlanArena`] slot reusable: after the first few activations
    /// the buffer has grown to the task's steady-state plan length and
    /// re-planning allocates nothing.
    pub fn clear(&mut self) {
        self.steps.clear();
    }

    /// Number of steps the plan can hold without reallocating.
    pub fn capacity(&self) -> usize {
        self.steps.capacity()
    }

    /// Appends a compute step in place.
    pub fn push_compute(&mut self, d: Duration) {
        self.steps.push_back(Step::Compute(d));
    }

    /// Appends a boxed effect in place (allocates the box; arena bodies
    /// should prefer [`Plan::push_effect_ref`]).
    pub fn push_effect(&mut self, f: impl FnMut(&mut W, &mut EffectCtx<'_, W>) + Send + 'static) {
        self.steps.push_back(Step::Effect(Box::new(f)));
    }

    /// Appends a body-owned effect reference in place — the allocation-free
    /// counterpart of [`Plan::push_effect`].
    pub fn push_effect_ref(&mut self, token: u32) {
        self.steps.push_back(Step::EffectRef(token));
    }

    /// Appends an arbitrary step in place.
    pub fn push_back(&mut self, s: Step<W>) {
        self.steps.push_back(s);
    }

    /// Moves all steps of `other` to the back of `self`, leaving `other`
    /// empty (with its capacity intact).
    pub fn append(&mut self, other: &mut Plan<W>) {
        self.steps.append(&mut other.steps);
    }
}

/// Per-task, capacity-retained plan storage.
///
/// The kernel owns one arena with a slot per declared task. At each first
/// dispatch of an activation the slot is cleared (capacity kept) and the
/// task body fills it in place via [`TaskBody::plan_into`]. Once a slot has
/// grown to the task's steady-state plan length, re-planning performs no
/// heap allocation at all — the campaign hot path relies on this to run
/// alloc-free trials. [`PlanArena::reset`] (called from `Os::reset`) clears
/// every slot but keeps the capacity, so pooled worlds replay trials without
/// re-growing the buffers.
pub struct PlanArena<W> {
    slots: Vec<Plan<W>>,
    /// Per-slot epoch of the last mutable access (delta-snapshot regions).
    stamps: Vec<u64>,
    /// Current write stamp; bumped by `snapshot_into`/`restore_from`.
    epoch: u64,
    /// Snapshot id this arena's state derives from (0 = none).
    derived_from: u64,
}

impl<W> fmt::Debug for PlanArena<W> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PlanArena")
            .field("slots", &self.slots.len())
            .finish()
    }
}

impl<W> Default for PlanArena<W> {
    fn default() -> Self {
        PlanArena {
            slots: Vec::new(),
            stamps: Vec::new(),
            epoch: 0,
            derived_from: 0,
        }
    }
}

impl<W> PlanArena<W> {
    /// Creates an empty arena.
    pub fn new() -> Self {
        PlanArena::default()
    }

    /// Ensures at least `n` slots exist (one per task id). New slots are
    /// stamped at the current epoch: a snapshot taken before the growth
    /// cannot vouch for them.
    pub fn grow_to(&mut self, n: usize) {
        if self.slots.len() < n {
            self.slots.resize_with(n, Plan::new);
            self.stamps.resize(n, self.epoch);
        }
    }

    /// Number of slots.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// `true` if the arena has no slots.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Mutable access to a task's slot. Stamps the slot dirty at the
    /// current epoch — this is the arena's single mutation gateway, so the
    /// delta-restore bookkeeping lives entirely here.
    ///
    /// # Panics
    ///
    /// Panics if `idx` was never grown to (kernel bug).
    pub fn slot_mut(&mut self, idx: usize) -> &mut Plan<W> {
        self.stamps[idx] = self.epoch;
        &mut self.slots[idx]
    }

    /// Clears every slot, retaining all allocated capacity. Part of the
    /// world-pooling contract: a reset arena replans exactly like a fresh
    /// one, only without the allocations. Stamps every slot at the current
    /// epoch and severs snapshot lineage (the next restore runs full).
    pub fn reset(&mut self) {
        for slot in &mut self.slots {
            slot.clear();
        }
        self.stamps.fill(self.epoch);
        self.derived_from = 0;
    }

    /// Sum of all slots' step capacities (observability for tests and
    /// benches asserting capacity retention across resets).
    pub fn total_capacity(&self) -> usize {
        self.slots.iter().map(Plan::capacity).sum()
    }

    /// Captures every slot's remaining steps. At a snapshot instant some
    /// slots may hold in-flight plans (a preempted `Compute` remainder, an
    /// unexecuted tail); all of that is plain data and clones freely.
    ///
    /// # Panics
    ///
    /// Panics if any slot holds a [`Step::Effect`] (boxed closure) — see
    /// [`Step`] docs; arena bodies plan `EffectRef` tokens, which snapshot.
    pub fn snapshot(&mut self) -> PlanArenaSnapshot {
        let mut snap = PlanArenaSnapshot::default();
        self.snapshot_into(&mut snap);
        snap
    }

    /// Captures every slot into `snap`, reusing its buffers (clear +
    /// extend — allocation-free once the snapshot is warm), records the
    /// arena as derived from the capture and bumps the write epoch.
    ///
    /// # Panics
    ///
    /// Panics on a [`Step::Effect`] slot, as for [`PlanArena::snapshot`].
    pub fn snapshot_into(&mut self, snap: &mut PlanArenaSnapshot) {
        snap.slots.truncate(self.slots.len());
        while snap.slots.len() < self.slots.len() {
            snap.slots.push(Vec::new());
        }
        for (dst, src) in snap.slots.iter_mut().zip(&self.slots) {
            dst.clear();
            dst.extend(src.steps.iter().map(Step::data));
        }
        snap.stamps.clone_from(&self.stamps);
        snap.epoch = self.epoch;
        snap.id = next_snapshot_id();
        self.derived_from = snap.id;
        self.epoch += 1;
    }

    /// Captures every slot's content into `snap` *without* joining the
    /// restore lineage (capture id 0, arena bookkeeping untouched) — the
    /// macro-stepping engine's hyperperiod sample. A real snapshot here
    /// would sever the campaign checkpoints' lineage and force their next
    /// restore onto the full-copy path.
    ///
    /// # Panics
    ///
    /// Panics on a [`Step::Effect`] slot, as for [`PlanArena::snapshot`].
    pub fn image_into(&self, snap: &mut PlanArenaSnapshot) {
        snap.slots.truncate(self.slots.len());
        while snap.slots.len() < self.slots.len() {
            snap.slots.push(Vec::new());
        }
        for (dst, src) in snap.slots.iter_mut().zip(&self.slots) {
            dst.clear();
            dst.extend(src.steps.iter().map(Step::data));
        }
        snap.stamps.clone_from(&self.stamps);
        snap.epoch = self.epoch;
        snap.id = 0;
    }

    /// Restores every slot to the snapshot's steps, retaining each slot's
    /// allocated capacity (clear + extend, no buffer replacement). When the
    /// arena still derives from exactly this snapshot, slots untouched
    /// since the capture are skipped — O(dirty slots). Reports per-slot
    /// region stats.
    pub fn restore_from(&mut self, snap: &PlanArenaSnapshot) -> RestoreStats {
        let mut stats = RestoreStats::default();
        let full = self.derived_from != snap.id || self.slots.len() != snap.slots.len();
        self.grow_to(snap.slots.len());
        for i in 0..snap.slots.len() {
            let copy = full || self.stamps[i] > snap.epoch;
            stats.region(copy);
            if copy {
                let slot = &mut self.slots[i];
                slot.steps.clear();
                slot.steps.extend(snap.slots[i].iter().map(|d| d.to_step()));
                self.stamps[i] = snap.stamps[i];
            }
        }
        for i in snap.slots.len()..self.slots.len() {
            stats.region(true);
            self.slots[i].steps.clear();
            self.stamps[i] = self.epoch;
        }
        self.derived_from = snap.id;
        self.epoch = self.epoch.max(snap.epoch) + 1;
        stats
    }
}

/// The remaining steps of every [`PlanArena`] slot at snapshot time
/// (see [`PlanArena::snapshot`]). World-independent plain data, so node
/// snapshots containing it are `Send + Sync` and shareable via `Arc`.
#[derive(Default, Clone)]
pub struct PlanArenaSnapshot {
    slots: Vec<Vec<StepData>>,
    stamps: Vec<u64>,
    epoch: u64,
    id: u64,
}

impl PlanArenaSnapshot {
    /// `true` if both captures hold the same remaining steps in every slot,
    /// ignoring the delta-restore bookkeeping (stamps/epoch/id). Used by the
    /// macro-stepping guards to prove two hyperperiod samples equivalent.
    pub fn content_eq(&self, other: &PlanArenaSnapshot) -> bool {
        self.slots == other.slots
    }

    /// The captured per-slot steps (slot index = task id).
    pub fn slots(&self) -> &[Vec<StepData>] {
        &self.slots
    }
}

impl fmt::Debug for PlanArenaSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PlanArenaSnapshot")
            .field("slots", &self.slots.len())
            .field("epoch", &self.epoch)
            .finish()
    }
}

impl<W> FromIterator<Step<W>> for Plan<W> {
    fn from_iter<I: IntoIterator<Item = Step<W>>>(iter: I) -> Self {
        Plan {
            steps: iter.into_iter().collect(),
        }
    }
}

/// A task body: invoked once per activation to produce that activation's
/// execution plan.
///
/// Arena-backed bodies implement [`TaskBody::plan_into`] to fill the
/// kernel-owned, capacity-retained buffer in place and plan
/// [`Step::EffectRef`] tokens that dispatch back into
/// [`TaskBody::run_effect`] — zero heap allocation per activation. Plain
/// closures returning a [`Plan`] still work through the blanket impl (their
/// steps are moved into the arena buffer; the closure's own allocations
/// remain, which is fine outside the campaign hot path).
pub trait TaskBody<W>: Send {
    /// Fills `out` with the steps for one activation starting at `now`.
    /// `out` arrives empty but with the capacity retained from earlier
    /// activations of this task.
    ///
    /// The body may inspect (but not mutate) the world when deciding the
    /// plan; mutations belong in effect steps so they happen at the right
    /// simulated time.
    fn plan_into(&mut self, now: Instant, world: &W, out: &mut Plan<W>);

    /// Executes the effect identified by `token` (planned as
    /// [`Step::EffectRef`]). The kernel invokes this **in place** on the
    /// body stored in the TCB (no move out/back per effect) with a
    /// kernel-backed [`EffectCtx`] through which OS services execute
    /// directly. The default implementation panics: a body that plans
    /// effect references must override this.
    fn run_effect(&mut self, token: u32, world: &mut W, ctx: &mut EffectCtx<'_, W>) {
        let _ = (world, ctx);
        panic!(
            "task body `{}` planned Step::EffectRef({token}) without implementing run_effect",
            self.name()
        );
    }

    /// Plans one activation into a fresh buffer — convenience wrapper over
    /// [`TaskBody::plan_into`] for tests and non-hot-path callers.
    fn plan(&mut self, now: Instant, world: &W) -> Plan<W> {
        let mut out = Plan::new();
        self.plan_into(now, world, &mut out);
        out
    }

    /// Name used in traces; defaults to `"task"`.
    fn name(&self) -> &str {
        "task"
    }
}

/// Blanket impl so plain closures can serve as task bodies.
impl<W, F> TaskBody<W> for F
where
    F: FnMut(Instant, &W) -> Plan<W> + Send,
{
    fn plan_into(&mut self, now: Instant, world: &W, out: &mut Plan<W>) {
        out.append(&mut self(now, world));
    }
}

/// Kernel-side supplier of OS services to a running effect.
///
/// The kernel's scheduler core implements this trait; [`KernelServices`]
/// wraps a `&mut dyn ServiceCore<W>` and is what effects see. The trait is
/// public so tests and benches can drive [`TaskBody::run_effect`] against a
/// mock kernel — see the example on [`KernelServices`].
pub trait ServiceCore<W> {
    /// `ActivateTask`, executed synchronously at the current instant.
    ///
    /// # Errors
    ///
    /// Propagates the kernel's activation errors (unknown id, activation
    /// queue full).
    fn activate_task(&mut self, task: TaskId, world: &mut W) -> Result<(), OsError>;

    /// `SetEvent`, executed synchronously at the current instant.
    ///
    /// # Errors
    ///
    /// Propagates the kernel's event errors (unknown id, basic task,
    /// suspended task).
    fn set_event(&mut self, task: TaskId, mask: EventMask, world: &mut W) -> Result<(), OsError>;

    /// `CancelAlarm` on the alarm with the given raw id.
    ///
    /// # Errors
    ///
    /// Propagates the kernel's alarm errors (unknown id, not armed).
    fn cancel_alarm_raw(&mut self, raw_alarm_id: u32) -> Result<(), OsError>;

    /// State of a task (for effects that branch on readiness).
    ///
    /// # Errors
    ///
    /// [`OsError::InvalidId`] for an unknown id.
    fn task_state(&self, task: TaskId) -> Result<TaskState, OsError>;

    /// The kernel trace recorder.
    fn trace_mut(&mut self) -> &mut TraceRecorder;

    /// Whether trace records are retained.
    fn trace_enabled(&self) -> bool;
}

/// The split-borrow service view a dispatched effect holds on the kernel.
///
/// The kernel factors its state so that the task bodies, the plan arena and
/// the scheduler core (trace, timer queue, ready queue, task metadata) are
/// *disjoint* borrows: while [`TaskBody::run_effect`] executes in place on
/// the body, the effect's [`EffectCtx`] carries a `KernelServices` view of
/// the core, so `ActivateTask`/`SetEvent`/`CancelAlarm` run **directly and
/// synchronously** — no deferred request queue, no aliasing of the TCB.
///
/// # Examples
///
/// Driving a body's effect against a mock kernel (the same mechanism the
/// real kernel uses, minus the scheduler):
///
/// ```
/// use easis_osek::error::OsError;
/// use easis_osek::plan::{EffectCtx, KernelServices, ServiceCore};
/// use easis_osek::task::{EventMask, TaskId, TaskState};
/// use easis_sim::time::Instant;
/// use easis_sim::trace::TraceRecorder;
///
/// struct MockCore {
///     activated: Vec<TaskId>,
///     trace: TraceRecorder,
/// }
///
/// impl ServiceCore<u32> for MockCore {
///     fn activate_task(&mut self, task: TaskId, _world: &mut u32) -> Result<(), OsError> {
///         self.activated.push(task);
///         Ok(())
///     }
///     fn set_event(&mut self, _: TaskId, _: EventMask, _: &mut u32) -> Result<(), OsError> {
///         Ok(())
///     }
///     fn cancel_alarm_raw(&mut self, _raw: u32) -> Result<(), OsError> {
///         Ok(())
///     }
///     fn task_state(&self, _: TaskId) -> Result<TaskState, OsError> {
///         Ok(TaskState::Suspended)
///     }
///     fn trace_mut(&mut self) -> &mut TraceRecorder {
///         &mut self.trace
///     }
///     fn trace_enabled(&self) -> bool {
///         self.trace.is_enabled()
///     }
/// }
///
/// let mut core = MockCore { activated: Vec::new(), trace: TraceRecorder::new() };
/// let mut world = 0u32;
/// {
///     let services = KernelServices::new(&mut core);
///     let mut ctx = EffectCtx::for_kernel(Instant::from_micros(5), TaskId(0), services);
///     // What an effect does: call the service directly.
///     ctx.activate_task(TaskId(2), &mut world).unwrap();
///     ctx.trace("body", "mark", "activated peer");
/// }
/// assert_eq!(core.activated, vec![TaskId(2)]);
/// assert_eq!(core.trace.events().len(), 1);
/// ```
pub struct KernelServices<'a, W> {
    core: &'a mut dyn ServiceCore<W>,
}

impl<'a, W> KernelServices<'a, W> {
    /// Wraps a scheduler core (kernel-internal; public so mocks work).
    pub fn new(core: &'a mut dyn ServiceCore<W>) -> Self {
        KernelServices { core }
    }

    /// `ActivateTask`, executed synchronously.
    ///
    /// # Errors
    ///
    /// Propagates the kernel's activation errors.
    pub fn activate_task(&mut self, task: TaskId, world: &mut W) -> Result<(), OsError> {
        self.core.activate_task(task, world)
    }

    /// `SetEvent`, executed synchronously.
    ///
    /// # Errors
    ///
    /// Propagates the kernel's event errors.
    pub fn set_event(&mut self, task: TaskId, mask: EventMask, world: &mut W) -> Result<(), OsError> {
        self.core.set_event(task, mask, world)
    }

    /// `CancelAlarm` on the alarm with the given raw id, executed
    /// synchronously (used by fault treatment to stop a terminated
    /// application's activation source).
    ///
    /// # Errors
    ///
    /// Propagates the kernel's alarm errors.
    pub fn cancel_alarm(&mut self, raw_alarm_id: u32) -> Result<(), OsError> {
        self.core.cancel_alarm_raw(raw_alarm_id)
    }

    /// State of a task.
    ///
    /// # Errors
    ///
    /// [`OsError::InvalidId`] for an unknown id.
    pub fn task_state(&self, task: TaskId) -> Result<TaskState, OsError> {
        self.core.task_state(task)
    }

    /// The kernel trace recorder.
    pub fn trace_mut(&mut self) -> &mut TraceRecorder {
        self.core.trace_mut()
    }

    /// Whether trace records are retained.
    pub fn trace_enabled(&self) -> bool {
        self.core.trace_enabled()
    }
}

impl<W> fmt::Debug for KernelServices<'_, W> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("KernelServices").finish_non_exhaustive()
    }
}

/// What backs an [`EffectCtx`]: a live kernel core, or just a trace
/// recorder (unit tests driving bodies without an OS).
enum Services<'a, W> {
    Kernel(KernelServices<'a, W>),
    Detached(&'a mut TraceRecorder),
}

/// Context handed to [`Effect`]s and [`TaskBody::run_effect`]: current
/// time, the trace, and the OS service interface.
///
/// Inside the kernel the context is backed by [`KernelServices`], so
/// [`EffectCtx::activate_task`], [`EffectCtx::set_event`] and
/// [`EffectCtx::cancel_alarm`] execute directly and synchronously on the
/// scheduler core. A *detached* context ([`EffectCtx::new`]) has no kernel
/// behind it: the same calls record an `os-call` trace event instead of
/// executing, so a body unit test can assert what the body asked for by
/// reading the trace.
pub struct EffectCtx<'a, W> {
    now: Instant,
    task: TaskId,
    services: Services<'a, W>,
}

impl<'a, W> EffectCtx<'a, W> {
    /// Creates a *detached* context (no kernel behind it) — the seam for
    /// unit-testing bodies without an OS. Direct service calls record
    /// `os-call` trace events instead of executing.
    pub fn new(now: Instant, task: TaskId, trace: &'a mut TraceRecorder) -> Self {
        EffectCtx {
            now,
            task,
            services: Services::Detached(trace),
        }
    }

    /// Creates a kernel-backed context (kernel-internal; public so benches
    /// and mocks can reproduce the dispatch path).
    pub fn for_kernel(now: Instant, task: TaskId, services: KernelServices<'a, W>) -> Self {
        EffectCtx {
            now,
            task,
            services: Services::Kernel(services),
        }
    }

    /// Current simulated time.
    pub fn now(&self) -> Instant {
        self.now
    }

    /// The task executing this effect.
    pub fn task(&self) -> TaskId {
        self.task
    }

    /// Records a trace event at the current time.
    pub fn trace(&mut self, source: &str, kind: &str, detail: impl Into<String>) {
        let now = self.now;
        match &mut self.services {
            Services::Kernel(k) => k.trace_mut().record(now, source, kind, detail),
            Services::Detached(t) => t.record(now, source, kind, detail),
        }
    }

    /// Whether trace records are retained. Effects that format an
    /// expensive detail string should skip the formatting when this is
    /// `false` (a disabled recorder drops the record, but only after the
    /// caller already paid for the string).
    pub fn trace_enabled(&self) -> bool {
        match &self.services {
            Services::Kernel(k) => k.trace_enabled(),
            Services::Detached(t) => t.is_enabled(),
        }
    }

    /// The kernel service view, when this context is kernel-backed
    /// (`None` for detached test contexts).
    pub fn kernel(&mut self) -> Option<&mut KernelServices<'a, W>> {
        match &mut self.services {
            Services::Kernel(k) => Some(k),
            Services::Detached(_) => None,
        }
    }

    /// `ActivateTask`, executed synchronously on the kernel. On a detached
    /// context the call records an `os-call` trace event instead (testing
    /// seam) and reports `Ok`.
    ///
    /// # Errors
    ///
    /// Propagates the kernel's activation errors.
    pub fn activate_task(&mut self, task: TaskId, world: &mut W) -> Result<(), OsError> {
        let now = self.now;
        match &mut self.services {
            Services::Kernel(k) => k.activate_task(task, world),
            Services::Detached(t) => {
                t.record(now, "detached", "os-call", format!("ActivateTask({task})"));
                Ok(())
            }
        }
    }

    /// `SetEvent`, executed synchronously on the kernel. On a detached
    /// context the call records an `os-call` trace event instead (testing
    /// seam) and reports `Ok`.
    ///
    /// # Errors
    ///
    /// Propagates the kernel's event errors.
    pub fn set_event(&mut self, task: TaskId, mask: EventMask, world: &mut W) -> Result<(), OsError> {
        let now = self.now;
        match &mut self.services {
            Services::Kernel(k) => k.set_event(task, mask, world),
            Services::Detached(t) => {
                t.record(now, "detached", "os-call", format!("SetEvent({task}, {mask})"));
                Ok(())
            }
        }
    }

    /// `CancelAlarm` on the alarm with the given raw id, executed
    /// synchronously on the kernel. On a detached context the call records
    /// an `os-call` trace event instead (testing seam) and reports `Ok`.
    ///
    /// # Errors
    ///
    /// Propagates the kernel's alarm errors.
    pub fn cancel_alarm(&mut self, raw_alarm_id: u32) -> Result<(), OsError> {
        let now = self.now;
        match &mut self.services {
            Services::Kernel(k) => k.cancel_alarm(raw_alarm_id),
            Services::Detached(t) => {
                t.record(now, "detached", "os-call", format!("CancelAlarm({raw_alarm_id})"));
                Ok(())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use easis_sim::time::Duration;

    type W = u32;

    #[test]
    fn plan_builder_orders_steps() {
        let mut p: Plan<W> = Plan::new()
            .compute(Duration::from_micros(5))
            .effect(|w, _| *w += 1)
            .step(Step::ActivateTask(TaskId(1)));
        assert_eq!(p.len(), 3);
        assert!(matches!(p.pop(), Some(Step::Compute(_))));
        assert!(matches!(p.pop(), Some(Step::Effect(_))));
        assert!(matches!(p.pop(), Some(Step::ActivateTask(TaskId(1)))));
        assert!(p.pop().is_none());
    }

    #[test]
    fn push_front_resumes_preempted_compute() {
        let mut p: Plan<W> = Plan::new().compute(Duration::from_micros(10));
        let _ = p.pop();
        p.push_front(Step::Compute(Duration::from_micros(4)));
        match p.pop() {
            Some(Step::Compute(d)) => assert_eq!(d, Duration::from_micros(4)),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn closure_acts_as_task_body() {
        let mut body = |_now: Instant, _w: &W| Plan::<W>::new().compute(Duration::from_micros(1));
        let plan = body.plan(Instant::ZERO, &0);
        assert_eq!(plan.len(), 1);
    }

    #[test]
    fn detached_direct_calls_record_trace_events() {
        // The testing seam: without a kernel behind the context, the direct
        // service API records what the body asked for on the trace so body
        // unit tests can assert on it.
        let mut trace = TraceRecorder::new();
        {
            let mut ctx: EffectCtx<'_, W> =
                EffectCtx::new(Instant::from_micros(5), TaskId(0), &mut trace);
            assert!(ctx.kernel().is_none());
            let mut w: W = 0;
            ctx.activate_task(TaskId(2), &mut w).unwrap();
            ctx.set_event(TaskId(3), EventMask::bit(1), &mut w).unwrap();
            ctx.cancel_alarm(7).unwrap();
        }
        let calls: Vec<&str> = trace.of_kind("os-call").map(|e| e.detail.as_str()).collect();
        assert_eq!(
            calls,
            vec![
                "ActivateTask(T2)",
                "SetEvent(T3, 0b00000010)",
                "CancelAlarm(7)",
            ]
        );
        assert!(trace.events().iter().all(|e| e.source == "detached"));
    }

    struct RecordingCore {
        activated: Vec<TaskId>,
        events: Vec<(TaskId, EventMask)>,
        cancelled: Vec<u32>,
        trace: TraceRecorder,
    }

    impl ServiceCore<W> for RecordingCore {
        fn activate_task(&mut self, task: TaskId, world: &mut W) -> Result<(), OsError> {
            *world += 1;
            self.activated.push(task);
            Ok(())
        }
        fn set_event(&mut self, task: TaskId, mask: EventMask, _w: &mut W) -> Result<(), OsError> {
            self.events.push((task, mask));
            Ok(())
        }
        fn cancel_alarm_raw(&mut self, raw: u32) -> Result<(), OsError> {
            self.cancelled.push(raw);
            Err(OsError::AlarmNotInUse)
        }
        fn task_state(&self, _task: TaskId) -> Result<TaskState, OsError> {
            Ok(TaskState::Ready)
        }
        fn trace_mut(&mut self) -> &mut TraceRecorder {
            &mut self.trace
        }
        fn trace_enabled(&self) -> bool {
            self.trace.is_enabled()
        }
    }

    #[test]
    fn kernel_backed_direct_calls_execute_synchronously() {
        let mut core = RecordingCore {
            activated: Vec::new(),
            events: Vec::new(),
            cancelled: Vec::new(),
            trace: TraceRecorder::new(),
        };
        let mut w: W = 0;
        {
            let mut ctx =
                EffectCtx::for_kernel(Instant::from_micros(9), TaskId(1), KernelServices::new(&mut core));
            assert!(ctx.kernel().is_some());
            ctx.activate_task(TaskId(4), &mut w).unwrap();
            ctx.set_event(TaskId(5), EventMask::bit(2), &mut w).unwrap();
            assert_eq!(ctx.cancel_alarm(3), Err(OsError::AlarmNotInUse));
            assert_eq!(ctx.kernel().unwrap().task_state(TaskId(0)), Ok(TaskState::Ready));
        }
        assert_eq!(w, 1, "activation executed during the effect");
        assert_eq!(core.activated, vec![TaskId(4)]);
        assert_eq!(core.events, vec![(TaskId(5), EventMask::bit(2))]);
        assert_eq!(core.cancelled, vec![3]);
    }

    #[test]
    fn effect_ctx_traces_at_current_time() {
        let mut trace = TraceRecorder::new();
        {
            let mut ctx: EffectCtx<'_, W> =
                EffectCtx::new(Instant::from_micros(7), TaskId(0), &mut trace);
            ctx.trace("body", "mark", "x");
        }
        assert_eq!(trace.events()[0].at, Instant::from_micros(7));
    }

    #[test]
    fn kernel_backed_trace_lands_on_the_core_recorder() {
        let mut core = RecordingCore {
            activated: Vec::new(),
            events: Vec::new(),
            cancelled: Vec::new(),
            trace: TraceRecorder::new(),
        };
        {
            let mut ctx: EffectCtx<'_, W> =
                EffectCtx::for_kernel(Instant::from_micros(11), TaskId(0), KernelServices::new(&mut core));
            assert!(ctx.trace_enabled());
            ctx.trace("body", "mark", "y");
        }
        assert_eq!(core.trace.events()[0].at, Instant::from_micros(11));
        assert_eq!(core.trace.events()[0].kind, "mark");
    }

    #[test]
    fn plan_from_iterator() {
        let p: Plan<W> = vec![
            Step::Compute(Duration::from_micros(1)),
            Step::WaitEvent(EventMask::bit(0)),
        ]
        .into_iter()
        .collect();
        assert_eq!(p.len(), 2);
    }

    #[test]
    fn debug_formatting_is_informative() {
        let s: Step<W> = Step::Compute(Duration::from_millis(2));
        assert_eq!(format!("{s:?}"), "Compute(2ms)");
        let e: Step<W> = Step::Effect(Box::new(|_, _| {}));
        assert_eq!(format!("{e:?}"), "Effect(..)");
        let r: Step<W> = Step::EffectRef(7);
        assert_eq!(format!("{r:?}"), "EffectRef(7)");
    }

    #[test]
    fn clear_retains_capacity() {
        let mut p: Plan<W> = Plan::new();
        for _ in 0..16 {
            p.push_compute(Duration::from_micros(1));
        }
        let cap = p.capacity();
        assert!(cap >= 16);
        p.clear();
        assert!(p.is_empty());
        assert_eq!(p.capacity(), cap);
    }

    #[test]
    fn append_moves_steps_and_keeps_source_capacity() {
        let mut a: Plan<W> = Plan::new();
        let mut b: Plan<W> = Plan::new().compute(Duration::from_micros(1)).step(Step::Schedule);
        let cap_b = b.capacity();
        a.append(&mut b);
        assert_eq!(a.len(), 2);
        assert!(b.is_empty());
        assert_eq!(b.capacity(), cap_b);
    }

    #[test]
    fn arena_empty_plan_slot_is_valid() {
        let mut arena: PlanArena<W> = PlanArena::new();
        arena.grow_to(2);
        assert_eq!(arena.len(), 2);
        // A body that plans nothing leaves the slot empty: the kernel
        // terminates the activation immediately. No step, no panic.
        assert!(arena.slot_mut(0).pop().is_none());
        assert!(arena.slot_mut(0).is_empty());
    }

    #[test]
    fn arena_reset_keeps_grown_capacity() {
        let mut arena: PlanArena<W> = PlanArena::new();
        arena.grow_to(3);
        for i in 0..3 {
            let slot = arena.slot_mut(i);
            for _ in 0..(8 * (i + 1)) {
                slot.push_effect_ref(i as u32);
            }
        }
        let cap = arena.total_capacity();
        assert!(cap >= 8 + 16 + 24);
        arena.reset();
        for i in 0..3 {
            assert!(arena.slot_mut(i).is_empty());
        }
        assert_eq!(arena.total_capacity(), cap, "reset must not shrink slots");
        // Refilling to the previous length allocates nothing (capacity-wise:
        // the capacity stays put).
        for i in 0..3 {
            let slot = arena.slot_mut(i);
            for _ in 0..(8 * (i + 1)) {
                slot.push_effect_ref(i as u32);
            }
        }
        assert_eq!(arena.total_capacity(), cap);
    }

    #[test]
    fn arena_snapshot_restores_in_flight_plans() {
        let mut arena: PlanArena<W> = PlanArena::new();
        arena.grow_to(2);
        arena.slot_mut(0).push_compute(Duration::from_micros(7));
        arena.slot_mut(0).push_effect_ref(3);
        let snap = arena.snapshot();
        arena.slot_mut(0).clear();
        arena.slot_mut(1).push_back(Step::Schedule);
        arena.restore_from(&snap);
        assert_eq!(arena.slot_mut(0).len(), 2);
        assert!(matches!(arena.slot_mut(0).pop(), Some(Step::Compute(d)) if d == Duration::from_micros(7)));
        assert!(matches!(arena.slot_mut(0).pop(), Some(Step::EffectRef(3))));
        assert!(arena.slot_mut(1).is_empty(), "restore clears divergent slots");
    }

    #[test]
    fn arena_delta_restore_skips_clean_slots_and_resets_sever_lineage() {
        let mut arena: PlanArena<W> = PlanArena::new();
        arena.grow_to(4);
        for i in 0..4 {
            arena.slot_mut(i).push_effect_ref(i as u32);
        }
        let snap = arena.snapshot();
        arena.slot_mut(2).push_compute(Duration::from_micros(1));
        let stats = arena.restore_from(&snap);
        assert_eq!(stats.regions_total, 4);
        assert_eq!(stats.regions_copied, 1, "only the touched slot copies");
        assert_eq!(arena.slot_mut(2).len(), 1);
        // reset() stamps everything and severs lineage: the snapshot can no
        // longer vouch for any slot, so the next restore copies all four.
        arena.reset();
        let stats = arena.restore_from(&snap);
        assert_eq!(stats.regions_copied, 4);
        for i in 0..4 {
            assert_eq!(arena.slot_mut(i).len(), 1);
        }
    }

    #[test]
    #[should_panic(expected = "cannot be snapshotted")]
    fn arena_snapshot_rejects_boxed_effects() {
        let mut arena: PlanArena<W> = PlanArena::new();
        arena.grow_to(1);
        arena.slot_mut(0).push_effect(|_, _| {});
        let _ = arena.snapshot();
    }

    #[test]
    fn arena_grow_to_is_monotone() {
        let mut arena: PlanArena<W> = PlanArena::new();
        assert!(arena.is_empty());
        arena.grow_to(4);
        arena.grow_to(2); // never shrinks
        assert_eq!(arena.len(), 4);
    }

    #[test]
    fn closure_body_plans_into_arena_buffer() {
        let mut body = |_now: Instant, _w: &W| Plan::<W>::new().compute(Duration::from_micros(3));
        let mut out: Plan<W> = Plan::new();
        TaskBody::plan_into(&mut body, Instant::ZERO, &0, &mut out);
        assert_eq!(out.len(), 1);
        assert!(matches!(out.pop(), Some(Step::Compute(_))));
    }

    #[test]
    #[should_panic(expected = "without implementing run_effect")]
    fn default_run_effect_rejects_unclaimed_tokens() {
        struct NoEffects;
        impl TaskBody<W> for NoEffects {
            fn plan_into(&mut self, _now: Instant, _world: &W, _out: &mut Plan<W>) {}
        }
        let mut body = NoEffects;
        let mut w: W = 0;
        let mut trace = TraceRecorder::new();
        let mut ctx = EffectCtx::new(Instant::ZERO, TaskId(0), &mut trace);
        body.run_effect(9, &mut w, &mut ctx);
    }
}

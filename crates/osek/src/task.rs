//! Task model: identifiers, configuration and states.
//!
//! OSEK distinguishes *basic* tasks (run to completion, no waiting) from
//! *extended* tasks (may block on events). Tasks have static priorities;
//! the scheduler is fixed-priority preemptive (OSEK "full-preemptive"
//! conformance classes). AUTOSAR-OS-style timing protection (execution
//! budget) and OSEKTime-style deadlines are optional per-task attributes —
//! they are the *task-granularity* monitors the paper argues are too coarse
//! for runnable supervision (section 2, Related work).

use easis_sim::time::Duration;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a task, dense index into the OS task table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct TaskId(pub u32);

impl TaskId {
    /// Index into the task table.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for TaskId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T{}", self.0)
    }
}

/// Static priority. Higher value = higher priority (OSEK convention).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct Priority(pub u8);

impl fmt::Display for Priority {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P{}", self.0)
    }
}

/// Basic vs extended task (OSEK conformance classes BCC/ECC).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TaskKind {
    /// Runs to completion; cannot wait for events.
    Basic,
    /// May block on events (`WaitEvent`).
    Extended,
}

/// OSEK task states (spec figure: suspended/ready/running/waiting).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TaskState {
    /// Not activated.
    Suspended,
    /// Activated, waiting for the processor.
    Ready,
    /// Currently executing.
    Running,
    /// Extended task blocked on an event.
    Waiting,
}

impl fmt::Display for TaskState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            TaskState::Suspended => "suspended",
            TaskState::Ready => "ready",
            TaskState::Running => "running",
            TaskState::Waiting => "waiting",
        };
        f.write_str(s)
    }
}

/// Static configuration of one task, built with [`TaskConfig::new`] and the
/// `with_*` methods.
///
/// # Examples
///
/// ```
/// use easis_osek::task::{Priority, TaskConfig, TaskKind};
/// use easis_sim::time::Duration;
///
/// let cfg = TaskConfig::new("SafeSpeedTask", Priority(5))
///     .with_kind(TaskKind::Basic)
///     .with_deadline(Duration::from_millis(10))
///     .with_execution_budget(Duration::from_millis(4));
/// assert_eq!(cfg.name(), "SafeSpeedTask");
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TaskConfig {
    name: String,
    priority: Priority,
    kind: TaskKind,
    preemptable: bool,
    max_activations: u32,
    deadline: Option<Duration>,
    execution_budget: Option<Duration>,
    autostart: bool,
}

impl TaskConfig {
    /// Creates a preemptable basic task with one allowed activation.
    pub fn new(name: impl Into<String>, priority: Priority) -> Self {
        TaskConfig {
            name: name.into(),
            priority,
            kind: TaskKind::Basic,
            preemptable: true,
            max_activations: 1,
            deadline: None,
            execution_budget: None,
            autostart: false,
        }
    }

    /// Sets the task kind (basic/extended).
    pub fn with_kind(mut self, kind: TaskKind) -> Self {
        self.kind = kind;
        self
    }

    /// Marks the task non-preemptable (OSEK `SCHEDULE = NON`).
    pub fn non_preemptable(mut self) -> Self {
        self.preemptable = false;
        self
    }

    /// Allows up to `n` queued activations (OSEK multiple activation, BCC2).
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn with_max_activations(mut self, n: u32) -> Self {
        assert!(n > 0, "a task needs at least one allowed activation");
        self.max_activations = n;
        self
    }

    /// Attaches an OSEKTime-style relative deadline, measured from
    /// activation; a miss is reported through the OS hook and trace.
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Attaches an AUTOSAR-OS-style execution-time budget per activation.
    pub fn with_execution_budget(mut self, budget: Duration) -> Self {
        self.execution_budget = Some(budget);
        self
    }

    /// Activates the task automatically at OS start.
    pub fn autostart(mut self) -> Self {
        self.autostart = true;
        self
    }

    /// Task name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Static priority.
    pub fn priority(&self) -> Priority {
        self.priority
    }

    /// Basic or extended.
    pub fn kind(&self) -> TaskKind {
        self.kind
    }

    /// `true` unless configured non-preemptable.
    pub fn is_preemptable(&self) -> bool {
        self.preemptable
    }

    /// Maximum queued activations.
    pub fn max_activations(&self) -> u32 {
        self.max_activations
    }

    /// Optional deadline.
    pub fn deadline(&self) -> Option<Duration> {
        self.deadline
    }

    /// Optional execution budget.
    pub fn execution_budget(&self) -> Option<Duration> {
        self.execution_budget
    }

    /// `true` if activated at OS start.
    pub fn is_autostart(&self) -> bool {
        self.autostart
    }
}

/// Bit mask of OS events an extended task can wait for / be signalled with.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct EventMask(pub u32);

impl EventMask {
    /// The empty mask.
    pub const NONE: EventMask = EventMask(0);

    /// Mask with the single event bit `bit` set.
    ///
    /// # Panics
    ///
    /// Panics if `bit >= 32`.
    pub fn bit(bit: u8) -> Self {
        assert!(bit < 32, "event bits range over 0..32");
        EventMask(1 << bit)
    }

    /// Union of two masks.
    pub fn union(self, other: EventMask) -> EventMask {
        EventMask(self.0 | other.0)
    }

    /// `true` if any bit of `other` is set in `self`.
    pub fn intersects(self, other: EventMask) -> bool {
        self.0 & other.0 != 0
    }

    /// Clears the bits of `other`.
    pub fn clear(self, other: EventMask) -> EventMask {
        EventMask(self.0 & !other.0)
    }

    /// `true` if no bit is set.
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }
}

impl fmt::Display for EventMask {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#010b}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_sets_all_attributes() {
        let cfg = TaskConfig::new("t", Priority(3))
            .with_kind(TaskKind::Extended)
            .non_preemptable()
            .with_max_activations(4)
            .with_deadline(Duration::from_millis(20))
            .with_execution_budget(Duration::from_millis(5))
            .autostart();
        assert_eq!(cfg.priority(), Priority(3));
        assert_eq!(cfg.kind(), TaskKind::Extended);
        assert!(!cfg.is_preemptable());
        assert_eq!(cfg.max_activations(), 4);
        assert_eq!(cfg.deadline(), Some(Duration::from_millis(20)));
        assert_eq!(cfg.execution_budget(), Some(Duration::from_millis(5)));
        assert!(cfg.is_autostart());
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn zero_activations_rejected() {
        let _ = TaskConfig::new("t", Priority(0)).with_max_activations(0);
    }

    #[test]
    fn priority_orders_by_value() {
        assert!(Priority(5) > Priority(2));
    }

    #[test]
    fn event_mask_algebra() {
        let a = EventMask::bit(0);
        let b = EventMask::bit(3);
        let ab = a.union(b);
        assert!(ab.intersects(a));
        assert!(ab.intersects(b));
        assert!(!a.intersects(b));
        assert_eq!(ab.clear(a), b);
        assert!(EventMask::NONE.is_empty());
    }

    #[test]
    #[should_panic(expected = "0..32")]
    fn event_bit_out_of_range_panics() {
        let _ = EventMask::bit(32);
    }

    #[test]
    fn display_formats() {
        assert_eq!(TaskId(4).to_string(), "T4");
        assert_eq!(Priority(7).to_string(), "P7");
        assert_eq!(TaskState::Waiting.to_string(), "waiting");
    }
}

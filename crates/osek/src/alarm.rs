//! Alarms.
//!
//! OSEK alarms attach to counters and, on expiry, activate a task or set an
//! event. In this model the OS clock is the single underlying counter (the
//! sim time base) and alarms are scheduled directly on the kernel's event
//! queue. Cyclic alarms are the platform's periodic task activators — the
//! SafeSpeed 10 ms cycle in the paper's validation is one such alarm. The
//! execution-frequency error injector works by rescaling alarm cycles,
//! mirroring the ControlDesk "time scalar" slider.

use crate::task::{EventMask, TaskId};
use easis_sim::time::Duration;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of an alarm.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct AlarmId(pub u32);

impl AlarmId {
    /// Index into the alarm table.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for AlarmId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "A{}", self.0)
    }
}

/// What an alarm does when it expires.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AlarmAction {
    /// `ALARMCALLBACK ActivateTask`.
    ActivateTask(TaskId),
    /// `ALARMCALLBACK SetEvent`.
    SetEvent(TaskId, EventMask),
}

/// Runtime state of an alarm.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Alarm {
    name: String,
    action: AlarmAction,
    /// Cycle for cyclic alarms; `None` for one-shot.
    cycle: Option<Duration>,
    /// Multiplier applied to the cycle when re-arming. `1000` = nominal
    /// (parts-per-thousand). The frequency error injector manipulates this.
    cycle_scale_ppm: u64,
    armed: bool,
}

impl Alarm {
    /// Creates a disarmed alarm.
    pub fn new(name: impl Into<String>, action: AlarmAction) -> Self {
        Alarm {
            name: name.into(),
            action,
            cycle: None,
            cycle_scale_ppm: 1_000_000,
            armed: false,
        }
    }

    /// Alarm name for traces.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Expiry action.
    pub fn action(&self) -> AlarmAction {
        self.action
    }

    /// Current cycle, if cyclic.
    pub fn cycle(&self) -> Option<Duration> {
        self.cycle
    }

    /// `true` while the alarm is armed.
    pub fn is_armed(&self) -> bool {
        self.armed
    }

    /// Arms the alarm with an optional cycle (kernel-internal).
    pub fn arm(&mut self, cycle: Option<Duration>) {
        self.cycle = cycle;
        self.armed = true;
    }

    /// Disarms the alarm (kernel-internal).
    pub fn disarm(&mut self) {
        self.armed = false;
    }

    /// Sets the cycle scale in parts-per-million of nominal. `1_000_000` is
    /// nominal; `2_000_000` doubles the period (halves the frequency);
    /// `500_000` halves the period. Used by the execution-frequency error
    /// injector.
    ///
    /// # Panics
    ///
    /// Panics if `ppm` is zero.
    pub fn set_cycle_scale_ppm(&mut self, ppm: u64) {
        assert!(ppm > 0, "cycle scale must be positive");
        self.cycle_scale_ppm = ppm;
    }

    /// Current cycle scale in ppm.
    pub fn cycle_scale_ppm(&self) -> u64 {
        self.cycle_scale_ppm
    }

    /// The effective re-arm cycle after scaling, if cyclic.
    pub fn effective_cycle(&self) -> Option<Duration> {
        self.cycle.map(|c| {
            let us = (c.as_micros() as u128 * self.cycle_scale_ppm as u128 / 1_000_000) as u64;
            Duration::from_micros(us.max(1))
        })
    }

    /// Captures the runtime portion of the alarm's state. Name and action
    /// are static configuration and stay out of the snapshot.
    pub fn runtime(&self) -> AlarmRuntime {
        AlarmRuntime {
            cycle: self.cycle,
            cycle_scale_ppm: self.cycle_scale_ppm,
            armed: self.armed,
        }
    }

    /// Restores runtime state previously captured with [`Alarm::runtime`].
    pub fn restore_runtime(&mut self, rt: AlarmRuntime) {
        self.cycle = rt.cycle;
        self.cycle_scale_ppm = rt.cycle_scale_ppm;
        self.armed = rt.armed;
    }
}

/// The armed/cycle/scale portion of an [`Alarm`] — everything a kernel
/// snapshot needs to restore an alarm without touching its configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AlarmRuntime {
    cycle: Option<Duration>,
    cycle_scale_ppm: u64,
    armed: bool,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arm_and_disarm_toggle_state() {
        let mut a = Alarm::new("cyc", AlarmAction::ActivateTask(TaskId(0)));
        assert!(!a.is_armed());
        a.arm(Some(Duration::from_millis(10)));
        assert!(a.is_armed());
        assert_eq!(a.cycle(), Some(Duration::from_millis(10)));
        a.disarm();
        assert!(!a.is_armed());
    }

    #[test]
    fn effective_cycle_applies_scale() {
        let mut a = Alarm::new("cyc", AlarmAction::ActivateTask(TaskId(0)));
        a.arm(Some(Duration::from_millis(10)));
        assert_eq!(a.effective_cycle(), Some(Duration::from_millis(10)));
        a.set_cycle_scale_ppm(2_000_000);
        assert_eq!(a.effective_cycle(), Some(Duration::from_millis(20)));
        a.set_cycle_scale_ppm(500_000);
        assert_eq!(a.effective_cycle(), Some(Duration::from_millis(5)));
    }

    #[test]
    fn effective_cycle_never_reaches_zero() {
        let mut a = Alarm::new("cyc", AlarmAction::ActivateTask(TaskId(0)));
        a.arm(Some(Duration::from_micros(2)));
        a.set_cycle_scale_ppm(1);
        assert_eq!(a.effective_cycle(), Some(Duration::from_micros(1)));
    }

    #[test]
    fn one_shot_has_no_effective_cycle() {
        let mut a = Alarm::new("once", AlarmAction::SetEvent(TaskId(1), EventMask::bit(0)));
        a.arm(None);
        assert_eq!(a.effective_cycle(), None);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_scale_rejected() {
        let mut a = Alarm::new("cyc", AlarmAction::ActivateTask(TaskId(0)));
        a.set_cycle_scale_ppm(0);
    }
}

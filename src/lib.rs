//! # easis — the EASIS Software Watchdog reproduction, in one crate
//!
//! Facade over the workspace reproducing *Application of Software Watchdog
//! as a Dependability Software Service for Automotive Safety Relevant
//! Systems* (DSN 2007). Each member crate is re-exported under a short
//! module name:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`sim`] | `easis-sim` | deterministic simulation substrate |
//! | [`osek`] | `easis-osek` | OSEK/VDX operating-system model |
//! | [`rte`] | `easis-rte` | runnable layer + heartbeat glue |
//! | [`obs`] | `easis-obs` | flight recorder + metrics registry |
//! | [`watchdog`] | `easis-watchdog` | **the Software Watchdog service** |
//! | [`fmf`] | `easis-fmf` | Fault Management Framework |
//! | [`baselines`] | `easis-baselines` | HW watchdog, deadline/budget monitors, CFCSS |
//! | [`bus`] | `easis-bus` | CAN, FlexRay, gateway |
//! | [`vehicle`] | `easis-vehicle` | plant, driver, environment, sensors |
//! | [`apps`] | `easis-apps` | SafeSpeed, SafeLane, steer-by-wire |
//! | [`injection`] | `easis-injection` | error injection + campaigns |
//! | [`validator`] | `easis-validator` | the HIL architecture validator |
//!
//! # Examples
//!
//! ```
//! use easis::injection::Injector;
//! use easis::sim::time::Instant;
//! use easis::validator::{CentralNode, NodeConfig};
//!
//! // Run the paper's central node fault-free for 100 ms.
//! let mut node = CentralNode::build(NodeConfig::safespeed_only());
//! node.start();
//! node.run_until(Instant::from_millis(100), &mut Injector::none());
//! assert!(node.world.fault_log.is_empty());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use easis_apps as apps;
pub use easis_baselines as baselines;
pub use easis_bus as bus;
pub use easis_fmf as fmf;
pub use easis_injection as injection;
pub use easis_obs as obs;
pub use easis_osek as osek;
pub use easis_rte as rte;
pub use easis_sim as sim;
pub use easis_validator as validator;
pub use easis_vehicle as vehicle;
pub use easis_watchdog as watchdog;

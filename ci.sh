#!/usr/bin/env bash
# Local CI gate: build, test, lint. Run from the repo root.
# Mirrors what reviewers run before merging; keep it green.
set -euo pipefail

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> cargo test --workspace -q"
cargo test --workspace -q

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo doc --workspace --no-deps (warnings denied)"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps

echo "==> trace_dump smoke test (fixed-seed flight-recorder trial)"
cargo run --release -q -p easis-bench --bin trace_dump > /dev/null

echo "==> hotpath_bench smoke run (schema check, alloc gate)"
# Run from a scratch dir so the smoke run's JSON does not clobber the
# committed full-iteration BENCH_hotpath.json; speedup assertions are
# skipped below 1M iterations, the zero-alloc gate always applies.
hotpath_scratch="$(mktemp -d)"
(cd "$hotpath_scratch" && "$OLDPWD/target/release/hotpath_bench" 20000 > /dev/null)
for key in schema_version iterations monitored_runnables ns_per_heartbeat \
           ns_per_pfc_check ns_per_cycle_check steady_state_cycle_allocs \
           direct_dispatch; do
  grep -q "\"$key\"" "$hotpath_scratch/BENCH_hotpath.json" \
    || { echo "BENCH_hotpath.json missing key: $key"; exit 1; }
done
rm -rf "$hotpath_scratch"

echo "==> campaign_bench smoke run (forked vs pooled vs fresh, schema + alloc gates)"
# Reduced trial count from a scratch dir: the bit-identical forked-vs-
# pooled-vs-fresh stats assertions, the steady-state allocation floor,
# the faulty-trial allocation floor and the horizon-scaling zero-alloc
# gate always apply, as do the snapshot-probe gates (warm capture
# allocation floor, clean-tail dirty fraction < 1.0); the prefix-reuse
# (>=1.5x) and pooled-vs-fresh (>=2x) speedup assertions are skipped
# below the full 200 trials/class so smoke runs stay timing-noise-proof,
# and the committed BENCH_campaign.json (full-scale record) is not
# clobbered.
campaign_scratch="$(mktemp -d)"
(cd "$campaign_scratch" && EASIS_WORKERS=2 "$OLDPWD/target/release/campaign_bench" 10 > /dev/null)
for key in schema_version trials workers simulated_ms_per_trial setup \
           forked pooled fresh prefix_reuse speedup_vs_pooled \
           speedup_pooled_vs_fresh steady_state clean_trial_allocs \
           faulty_trial_allocs horizon_scaling_allocs snapshot \
           capture_ns restore_ns restore_dirty_fraction snapshot_allocs \
           tail_fastforward ffwd_span_fraction fallbacks certifications \
           speedup_vs_baseline parallel_efficiency \
           worker_sweep worker_sweep_note host_cores; do
  grep -q "\"$key\"" "$campaign_scratch/BENCH_campaign.json" \
    || { echo "BENCH_campaign.json missing key: $key"; exit 1; }
done
# The bench asserts dirty fraction < 1.0 itself; re-check the emitted
# record here so a report written by a stale binary cannot slip through.
dirty="$(grep '"restore_dirty_fraction"' "$campaign_scratch/BENCH_campaign.json" \
  | head -n1 | sed 's/[^0-9.]//g')"
awk -v d="$dirty" 'BEGIN { exit !(d < 1.0) }' \
  || { echo "restore_dirty_fraction is $dirty (must be < 1.0): delta restore regressed to a full copy"; exit 1; }
# Macro-stepping must have engaged even at smoke scale: the forked path's
# quiescent tails are hyperperiodic regardless of trial count.
ffwd="$(grep '"ffwd_span_fraction"' "$campaign_scratch/BENCH_campaign.json" \
  | head -n1 | sed 's/[^0-9.]//g')"
awk -v f="$ffwd" 'BEGIN { exit !(f > 0.0) }' \
  || { echo "ffwd_span_fraction is $ffwd (must be > 0): macro-stepping never engaged"; exit 1; }
rm -rf "$campaign_scratch"

echo "==> effect dispatch stays move-free (split-borrow kernel invariant)"
# The split-borrow kernel runs effects on bodies in place; a reappearing
# take/restore of the body slot would silently reintroduce the double
# move per effect. Scoped to the kernel sources: hotpath_bench keeps a
# deliberate take/restore replica as its moved-body baseline.
if grep -rn 'take().expect("body present")' crates/osek/src/; then
  echo "moved-body dispatch crept back into the kernel effect path"; exit 1
fi

echo "==> soak smoke run (short horizon via EASIS_SOAK_HORIZON_MS)"
# The full soak defaults to two simulated hours; one simulated minute
# still crosses several 2^24-us timer-wheel rotations, so the overflow
# cascade path — including the long-horizon central-node scenario that
# injects a fault across the rotation boundary — is exercised on every
# CI run.
EASIS_SOAK_HORIZON_MS=60000 cargo test -q --test soak

echo "==> campaign golden across worker/chunk/fast-forward configurations (forked path)"
# campaign_regression drives scenario::run_plan — the snapshot-forking
# engine with tail collapsing — so this loop proves the prefix-reuse
# report bytes stay identical to the golden at every worker count, with
# hyperperiod macro-stepping enabled (the default) and disabled: the
# certified jumps must be unobservable in the report bytes.
for ff in 1 0; do
  for w in 1 2 4; do
    EASIS_FASTFORWARD=$ff EASIS_WORKERS=$w EASIS_CHUNK=5 \
      cargo test -q --test campaign_regression
  done
done

echo "CI green."

#!/usr/bin/env bash
# Local CI gate: build, test, lint. Run from the repo root.
# Mirrors what reviewers run before merging; keep it green.
set -euo pipefail

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> cargo test --workspace -q"
cargo test --workspace -q

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo doc --workspace --no-deps (warnings denied)"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps

echo "==> trace_dump smoke test (fixed-seed flight-recorder trial)"
cargo run --release -q -p easis-bench --bin trace_dump > /dev/null

echo "CI green."

//! Offline stand-in for the `crossbeam` crate.
//!
//! Provides the two facilities the campaign executor uses:
//!
//! * [`channel`] — multi-producer **multi-consumer** channels (std's mpsc
//!   receiver is single-consumer, so this wraps a mutexed deque with a
//!   condvar);
//! * [`thread`] — scoped threads, delegating to `std::thread::scope`
//!   (stable since Rust 1.63, which is what crossbeam's scope predates).

/// Multi-producer multi-consumer FIFO channels.
pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};

    struct Shared<T> {
        queue: Mutex<State<T>>,
        ready: Condvar,
    }

    struct State<T> {
        items: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    /// Error returned by [`Sender::send`] when all receivers are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("sending on a channel with no receivers")
        }
    }

    /// Error returned by [`Receiver::recv`] when the channel is drained
    /// and all senders are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("receiving on an empty channel with no senders")
        }
    }

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// Channel is currently empty.
        Empty,
        /// Channel is empty and all senders are gone.
        Disconnected,
    }

    /// The sending half; clonable across threads.
    pub struct Sender<T>(Arc<Shared<T>>);

    /// The receiving half; clonable across threads (MPMC).
    pub struct Receiver<T>(Arc<Shared<T>>);

    /// Creates an unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(State {
                items: VecDeque::new(),
                senders: 1,
                receivers: 1,
            }),
            ready: Condvar::new(),
        });
        (Sender(shared.clone()), Receiver(shared))
    }

    impl<T> Sender<T> {
        /// Enqueues `item`, failing if every receiver has been dropped.
        pub fn send(&self, item: T) -> Result<(), SendError<T>> {
            let mut state = self.0.queue.lock().expect("channel poisoned");
            if state.receivers == 0 {
                return Err(SendError(item));
            }
            state.items.push_back(item);
            drop(state);
            self.0.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.0.queue.lock().expect("channel poisoned").senders += 1;
            Sender(self.0.clone())
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut state = self.0.queue.lock().expect("channel poisoned");
            state.senders -= 1;
            if state.senders == 0 {
                drop(state);
                self.0.ready.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Dequeues the next item, blocking while senders are alive.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut state = self.0.queue.lock().expect("channel poisoned");
            loop {
                if let Some(item) = state.items.pop_front() {
                    return Ok(item);
                }
                if state.senders == 0 {
                    return Err(RecvError);
                }
                state = self.0.ready.wait(state).expect("channel poisoned");
            }
        }

        /// Dequeues the next item without blocking.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut state = self.0.queue.lock().expect("channel poisoned");
            if let Some(item) = state.items.pop_front() {
                return Ok(item);
            }
            if state.senders == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }

        /// Blocking iterator draining the channel until disconnect.
        pub fn iter(&self) -> Iter<'_, T> {
            Iter(self)
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.0.queue.lock().expect("channel poisoned").receivers += 1;
            Receiver(self.0.clone())
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.0.queue.lock().expect("channel poisoned").receivers -= 1;
        }
    }

    /// Iterator over received items (ends when senders disconnect).
    pub struct Iter<'a, T>(&'a Receiver<T>);

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.0.recv().ok()
        }
    }

    impl<'a, T> IntoIterator for &'a Receiver<T> {
        type Item = T;
        type IntoIter = Iter<'a, T>;
        fn into_iter(self) -> Iter<'a, T> {
            self.iter()
        }
    }
}

/// Scoped threads.
pub mod thread {
    /// Spawns scoped threads via `std::thread::scope`; the closure
    /// receives the std `Scope` directly. Unlike crossbeam's original
    /// (pre-1.63) API this cannot observe child panics as an `Err` — a
    /// panicking child aborts the scope by propagating, which is the
    /// behaviour the campaign executor wants anyway.
    pub fn scope<'env, F, R>(f: F) -> std::thread::Result<R>
    where
        F: for<'scope> FnOnce(&'scope std::thread::Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(f))
    }
}

#[cfg(test)]
mod tests {
    use super::channel;

    #[test]
    fn mpmc_channel_distributes_work_across_consumers() {
        let (tx, rx) = channel::unbounded::<usize>();
        for i in 0..100 {
            tx.send(i).unwrap();
        }
        drop(tx);
        let got = std::thread::scope(|s| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    let rx = rx.clone();
                    s.spawn(move || rx.iter().collect::<Vec<_>>())
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().unwrap())
                .collect::<Vec<_>>()
        });
        let mut sorted = got;
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn recv_reports_disconnect() {
        let (tx, rx) = channel::unbounded::<u8>();
        tx.send(1).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Err(channel::RecvError));
    }
}

//! Offline stand-in for the `bytes` crate: [`Bytes`] as an immutable,
//! cheaply clonable, reference-counted byte buffer.

use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

/// An immutable shared byte buffer.
#[derive(Clone, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Bytes(Arc<[u8]>);

impl Bytes {
    /// Creates an empty buffer.
    pub fn new() -> Bytes {
        Bytes::default()
    }

    /// Copies `data` into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Bytes {
        Bytes(Arc::from(data))
    }

    /// Wraps a static slice (copied here; the real crate borrows).
    pub fn from_static(data: &'static [u8]) -> Bytes {
        Bytes::copy_from_slice(data)
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// `true` when empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Copies a sub-range into a new buffer.
    pub fn slice(&self, range: impl std::ops::RangeBounds<usize>) -> Bytes {
        use std::ops::Bound;
        let start = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        Bytes::copy_from_slice(&self.0[start..end])
    }

    /// Copies the contents into a `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.0.to_vec()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b{:?}", &self.0[..])
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        Bytes(Arc::from(v.into_boxed_slice()))
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Bytes {
        Bytes::copy_from_slice(v)
    }
}

impl<const N: usize> From<[u8; N]> for Bytes {
    fn from(v: [u8; N]) -> Bytes {
        Bytes::copy_from_slice(&v)
    }
}

impl<const N: usize> From<&[u8; N]> for Bytes {
    fn from(v: &[u8; N]) -> Bytes {
        Bytes::copy_from_slice(v)
    }
}

impl From<&str> for Bytes {
    fn from(v: &str) -> Bytes {
        Bytes::copy_from_slice(v.as_bytes())
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<I: IntoIterator<Item = u8>>(iter: I) -> Bytes {
        Bytes::from(iter.into_iter().collect::<Vec<u8>>())
    }
}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.0[..] == *other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.0[..] == other[..]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bytes_round_trip_and_share() {
        let b = Bytes::from(vec![1, 2, 3]);
        let c = b.clone();
        assert_eq!(b, c);
        assert_eq!(b.as_ref(), &[1, 2, 3]);
        assert_eq!(b.len(), 3);
        assert_eq!(b.slice(1..).as_ref(), &[2, 3]);
        assert_eq!(&b[..2], &[1, 2]);
    }
}

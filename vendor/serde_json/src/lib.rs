//! Offline stand-in for the `serde_json` crate.
//!
//! Renders and parses JSON over the [`serde`] stand-in's [`Value`] tree.
//! Output is deterministic: map entries keep their order (derive emits
//! declaration order, `BTreeMap` sorted order) and float formatting uses
//! Rust's shortest round-trip `Display`, so equal inputs always produce
//! byte-identical text — the property the campaign golden tests assert.

pub use serde::Error;
pub use serde::Value;

use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

/// Serializes `value` as compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.serialize(), None, 0);
    Ok(out)
}

/// Serializes `value` as 2-space-indented JSON.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.serialize(), Some(2), 0);
    Ok(out)
}

/// Parses JSON text into `T`.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let value = parse_value(text)?;
    T::deserialize(&value)
}

fn write_value(out: &mut String, value: &Value, indent: Option<usize>, depth: usize) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => {
            let _ = write!(out, "{b}");
        }
        Value::UInt(n) => {
            let _ = write!(out, "{n}");
        }
        Value::Int(n) => {
            let _ = write!(out, "{n}");
        }
        Value::Float(f) => {
            if f.is_finite() {
                let _ = write!(out, "{f}");
                // Keep a float marker so `1.0` does not collapse into an
                // integer token and change the round-tripped type.
                if f.fract() == 0.0 && f.abs() < 1e15 {
                    out.push_str(".0");
                }
            } else {
                out.push_str("null"); // JSON has no NaN/Infinity
            }
        }
        Value::Str(s) => write_string(out, s),
        Value::Seq(items) => write_delimited(out, '[', ']', items.len(), indent, depth, |out, i| {
            write_value(out, &items[i], indent, depth + 1);
        }),
        Value::Map(entries) => {
            write_delimited(out, '{', '}', entries.len(), indent, depth, |out, i| {
                let (k, v) = &entries[i];
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, v, indent, depth + 1);
            })
        }
    }
}

fn write_delimited(
    out: &mut String,
    open: char,
    close: char,
    len: usize,
    indent: Option<usize>,
    depth: usize,
    mut item: impl FnMut(&mut String, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(width) = indent {
            out.push('\n');
            for _ in 0..width * (depth + 1) {
                out.push(' ');
            }
        }
        item(out, i);
    }
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
    out.push(close);
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses a complete JSON document.
pub fn parse_value(text: &str) -> Result<Value, Error> {
    let bytes = text.as_bytes();
    let mut pos = 0;
    let value = parse_at(text, bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(Error::new(format!("trailing characters at offset {pos}")));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_at(text: &str, bytes: &[u8], pos: &mut usize) -> Result<Value, Error> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err(Error::new("unexpected end of JSON")),
        Some(b'n') => parse_keyword(bytes, pos, "null", Value::Null),
        Some(b't') => parse_keyword(bytes, pos, "true", Value::Bool(true)),
        Some(b'f') => parse_keyword(bytes, pos, "false", Value::Bool(false)),
        Some(b'"') => parse_string(text, bytes, pos).map(Value::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Value::Seq(items));
            }
            loop {
                items.push(parse_at(text, bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Value::Seq(items));
                    }
                    other => return Err(Error::new(format!("expected , or ] got {other:?}"))),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut entries = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Value::Map(entries));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(text, bytes, pos)?;
                skip_ws(bytes, pos);
                if bytes.get(*pos) != Some(&b':') {
                    return Err(Error::new("expected : after object key"));
                }
                *pos += 1;
                let value = parse_at(text, bytes, pos)?;
                entries.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Value::Map(entries));
                    }
                    other => return Err(Error::new(format!("expected , or }} got {other:?}"))),
                }
            }
        }
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_keyword(bytes: &[u8], pos: &mut usize, word: &str, value: Value) -> Result<Value, Error> {
    if bytes[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(value)
    } else {
        Err(Error::new(format!("invalid literal, expected `{word}`")))
    }
}

fn parse_string(text: &str, bytes: &[u8], pos: &mut usize) -> Result<String, Error> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(Error::new("expected string"));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err(Error::new("unterminated string")),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = text
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| Error::new("truncated \\u escape"))?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| Error::new("invalid \\u escape"))?;
                        out.push(
                            char::from_u32(code).ok_or_else(|| Error::new("invalid codepoint"))?,
                        );
                        *pos += 4;
                    }
                    other => return Err(Error::new(format!("invalid escape {other:?}"))),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one full UTF-8 scalar.
                let rest = &text[*pos..];
                let c = rest.chars().next().unwrap();
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Value, Error> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    let token = std::str::from_utf8(&bytes[start..*pos]).unwrap();
    if token.is_empty() {
        return Err(Error::new("expected number"));
    }
    let is_float = token.contains(['.', 'e', 'E']);
    if !is_float {
        if let Ok(n) = token.parse::<u64>() {
            return Ok(Value::UInt(n));
        }
        if let Ok(n) = token.parse::<i64>() {
            return Ok(Value::Int(n));
        }
    }
    token
        .parse::<f64>()
        .map(Value::Float)
        .map_err(|_| Error::new(format!("invalid number `{token}`")))
}

/// Builds a [`Value`] from JSON-like syntax (object/array/literal subset).
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $($item:tt),* $(,)? ]) => {
        $crate::Value::Seq(vec![ $( $crate::json!($item) ),* ])
    };
    ({ $($key:literal : $val:tt),* $(,)? }) => {{
        #[allow(unused_mut)]
        let mut __m = $crate::Value::new_map();
        $( __m.map_insert($key, $crate::json!($val)); )*
        __m
    }};
    ($other:expr) => {
        ::serde::Serialize::serialize(&$other)
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        for text in ["null", "true", "42", "-7", "19.4", "\"hi\\nthere\"", "[1,2.5,\"x\"]"] {
            let v = parse_value(text).unwrap();
            let mut out = String::new();
            write_value(&mut out, &v, None, 0);
            assert_eq!(out, text);
        }
    }

    #[test]
    fn floats_keep_a_float_marker() {
        assert_eq!(to_string(&1.0f64).unwrap(), "1.0");
        let back: f64 = from_str("1.0").unwrap();
        assert_eq!(back, 1.0);
    }

    #[test]
    fn pretty_output_is_indented() {
        let v = json!({"ok": true, "xs": [1, 2]});
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains("\n  \"ok\": true"));
        let reparsed = parse_value(&pretty).unwrap();
        assert_eq!(reparsed, v);
    }

    #[test]
    fn deep_structures_round_trip() {
        let text = r#"{"a":{"b":[{"c":1},{"c":2}]},"d":"e"}"#;
        let v = parse_value(text).unwrap();
        assert_eq!(to_string(&v).unwrap(), text);
    }
}

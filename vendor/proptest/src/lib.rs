//! Offline stand-in for the `proptest` crate.
//!
//! Provides the strategy combinators and macros this workspace's property
//! tests use, generating cases from a deterministic per-test RNG (seeded
//! from the test's module path and name) so runs are reproducible without
//! a persisted regression file. Shrinking is not implemented: a failing
//! case panics with the generated inputs visible in the assert message.

use std::collections::{BTreeMap, BTreeSet};
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// Per-test deterministic RNG (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng(u64);

impl TestRng {
    /// Seeds the generator from a test identifier (stable across runs).
    pub fn deterministic(name: &str) -> TestRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325; // FNV-1a
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng(h)
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be positive.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below(0)");
        let zone = u64::MAX - (u64::MAX % bound);
        loop {
            let v = self.next_u64();
            if v < zone {
                return v % bound;
            }
        }
    }

    /// Uniform value in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Test-runner configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A generator of test values.
pub trait Strategy {
    /// The generated type.
    type Value;
    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start() as i128, *self.end() as i128);
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo + 1) as u64; // never 0: i128 math
                (lo + rng.below(span) as i128) as $t
            }
        }
    )*};
}
impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let unit = rng.unit_f64() as $t;
                self.start + unit * (self.end - self.start)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                // Split the unit interval so both endpoints are reachable.
                let unit = (rng.next_u64() >> 11) as $t / ((1u64 << 53) - 1) as $t;
                lo + unit * (hi - lo)
            }
        }
    )*};
}
impl_float_range_strategy!(f32, f64);

/// Strategy yielding one fixed value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Generates an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite, sign-symmetric, broad magnitude range.
        let mag = rng.unit_f64() * 1e9;
        if rng.next_u64() & 1 == 1 {
            -mag
        } else {
            mag
        }
    }
}

/// Strategy of unconstrained values of `T`.
#[derive(Debug, Clone)]
pub struct Any<T>(PhantomData<T>);

/// The `any::<T>()` strategy constructor.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($n:tt $t:ident),+);)*) => {$(
        impl<$($t: Strategy),+> Strategy for ($($t,)+) {
            type Value = ($($t::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$n.generate(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (0 A, 1 B);
    (0 A, 1 B, 2 C);
    (0 A, 1 B, 2 C, 3 D);
}

/// `&str` regex-subset strategies: sequences of `[x-y]{m,n}`, `[x-y]`,
/// or literal characters (enough for patterns like `"[a-z]{1,8}"`).
impl Strategy for str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let mut out = String::new();
        let mut chars = self.chars().peekable();
        while let Some(c) = chars.next() {
            let (lo, hi) = if c == '[' {
                let lo = chars.next().expect("class start");
                assert_eq!(chars.next(), Some('-'), "expected `-` in char class");
                let hi = chars.next().expect("class end");
                assert_eq!(chars.next(), Some(']'), "expected `]` closing class");
                (lo, hi)
            } else {
                (c, c)
            };
            let (min, max) = if chars.peek() == Some(&'{') {
                chars.next();
                let mut first = 0usize;
                let mut cur = 0usize;
                let mut saw_comma = false;
                let mut closed = false;
                for d in chars.by_ref() {
                    match d {
                        '0'..='9' => cur = cur * 10 + (d as usize - '0' as usize),
                        ',' => {
                            first = cur;
                            cur = 0;
                            saw_comma = true;
                        }
                        '}' => {
                            closed = true;
                            break;
                        }
                        other => panic!("unsupported repeat char {other:?}"),
                    }
                }
                assert!(closed, "unterminated repeat");
                if saw_comma {
                    (first, cur) // `{m,n}`
                } else {
                    (cur, cur) // `{n}` exact repeat
                }
            } else {
                (1, 1)
            };
            let count = if max > min {
                min + rng.below((max - min + 1) as u64) as usize
            } else {
                min
            };
            for _ in 0..count {
                let span = hi as u32 - lo as u32 + 1;
                let picked = lo as u32 + rng.below(u64::from(span)) as u32;
                out.push(char::from_u32(picked).expect("valid char"));
            }
        }
        out
    }
}

/// Collection strategies.
pub mod collection {
    use super::*;

    /// A size specification for generated collections.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl SizeRange {
        fn pick(&self, rng: &mut TestRng) -> usize {
            self.lo + rng.below((self.hi_inclusive - self.lo + 1) as u64) as usize
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> SizeRange {
            SizeRange {
                lo: *r.start(),
                hi_inclusive: *r.end(),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange {
                lo: n,
                hi_inclusive: n,
            }
        }
    }

    /// Strategy for `Vec<S::Value>`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates vectors of `element` values with a length in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy for `BTreeSet<S::Value>`.
    #[derive(Debug, Clone)]
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates sets of `element` values with (up to) a size in `size`;
    /// if the element domain is too small, fewer elements are produced.
    pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.size.pick(rng);
            let mut set = BTreeSet::new();
            let mut attempts = 0;
            while set.len() < n && attempts < n * 20 + 20 {
                set.insert(self.element.generate(rng));
                attempts += 1;
            }
            set
        }
    }

    /// Strategy for `BTreeMap<K::Value, V::Value>`.
    #[derive(Debug, Clone)]
    pub struct BTreeMapStrategy<K, V> {
        key: K,
        value: V,
        size: SizeRange,
    }

    /// Generates maps with (up to) a size in `size`.
    pub fn btree_map<K, V>(key: K, value: V, size: impl Into<SizeRange>) -> BTreeMapStrategy<K, V>
    where
        K: Strategy,
        K::Value: Ord,
        V: Strategy,
    {
        BTreeMapStrategy {
            key,
            value,
            size: size.into(),
        }
    }

    impl<K, V> Strategy for BTreeMapStrategy<K, V>
    where
        K: Strategy,
        K::Value: Ord,
        V: Strategy,
    {
        type Value = BTreeMap<K::Value, V::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.size.pick(rng);
            let mut map = BTreeMap::new();
            let mut attempts = 0;
            while map.len() < n && attempts < n * 20 + 20 {
                map.insert(self.key.generate(rng), self.value.generate(rng));
                attempts += 1;
            }
            map
        }
    }
}

/// The strategy prelude, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Any, Arbitrary,
        Just, ProptestConfig, Strategy, TestRng,
    };

    /// Mirror of the `prop` module alias exported by proptest's prelude.
    pub mod prop {
        pub use crate::collection;
    }
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// expands to a `#[test]`-style function running `cases` generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { [$cfg] $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { [$crate::ProptestConfig::default()] $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_impl {
    ([$cfg:expr] $($(#[$meta:meta])* fn $name:ident($($parm:pat in $strategy:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::ProptestConfig = $cfg;
                let mut __rng = $crate::TestRng::deterministic(concat!(
                    module_path!(),
                    "::",
                    stringify!($name)
                ));
                for __case in 0..__cfg.cases {
                    let _ = __case;
                    $(let $parm = $crate::Strategy::generate(&($strategy), &mut __rng);)+
                    $body
                }
            }
        )*
    };
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Skips the current generated case when its precondition fails. Only
/// valid at the top level of a property-test body (it `continue`s the
/// case loop).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            continue;
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::deterministic("ranges");
        for _ in 0..1000 {
            let v = (5u64..10).generate(&mut rng);
            assert!((5..10).contains(&v));
            let w = (2u64..=4).generate(&mut rng);
            assert!((2..=4).contains(&w));
            let f = (1.5f64..2.5).generate(&mut rng);
            assert!((1.5..2.5).contains(&f));
        }
    }

    #[test]
    fn string_pattern_generates_within_class() {
        let mut rng = TestRng::deterministic("pattern");
        for _ in 0..200 {
            let s = "[a-z]{1,8}".generate(&mut rng);
            assert!((1..=8).contains(&s.len()), "{s:?}");
            assert!(s.chars().all(|c| c.is_ascii_lowercase()), "{s:?}");
        }
    }

    #[test]
    fn collections_honour_size() {
        let mut rng = TestRng::deterministic("collections");
        for _ in 0..100 {
            let v = prop::collection::vec(0u32..5, 2..6).generate(&mut rng);
            assert!((2..6).contains(&v.len()));
            let s = prop::collection::btree_set(0u16..1000, 3..5).generate(&mut rng);
            assert!(s.len() >= 3);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// The macro itself: bindings, tuples, assume and asserts.
        #[test]
        fn macro_smoke(mut xs in prop::collection::vec((0u8..4, any::<bool>()), 1..4), y in 1u32..5) {
            prop_assume!(y != 4);
            xs.push((0, false));
            prop_assert!(y < 4);
            prop_assert_eq!(xs.last().copied(), Some((0, false)));
        }
    }
}

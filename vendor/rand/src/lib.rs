//! Offline stand-in for the `rand` crate.
//!
//! The workspace declares `rand` as a dependency but all simulation code
//! uses the repo's own deterministic `SimRng`; this stub exists so the
//! manifests resolve offline. It still provides a working SplitMix64-based
//! [`StdRng`] and the core [`Rng`]/[`SeedableRng`]/[`RngCore`] traits in
//! case future code reaches for them.

/// Low-level uniform bit generation.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

/// Construction from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Convenience sampling on top of [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform value in `[0, bound)`; `bound` must be non-zero.
    fn gen_range_u64(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "gen_range_u64 bound must be non-zero");
        // Multiply-shift rejection-free mapping; bias is negligible for
        // the simulation ranges this workspace uses.
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }

    /// Uniform `f64` in `[0, 1)`.
    fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform `bool`.
    fn gen_bool_uniform(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }
}

impl<T: RngCore> Rng for T {}

/// Deterministic SplitMix64 generator standing in for rand's `StdRng`.
#[derive(Debug, Clone)]
pub struct StdRng {
    state: u64,
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> StdRng {
        StdRng { state: seed }
    }
}

impl RngCore for StdRng {
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Module mirror of rand's `rngs` namespace.
pub mod rngs {
    pub use crate::StdRng;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn std_rng_is_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..10 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let x = a.gen_range_u64(100);
        assert!(x < 100);
        let f = a.gen_f64();
        assert!((0.0..1.0).contains(&f));
    }
}

//! Derive macros for the offline `serde` stand-in.
//!
//! `syn`/`quote` are unavailable offline, so the item is parsed directly
//! from the `proc_macro` token stream. The supported grammar is the
//! subset this workspace uses: non-generic structs (named, tuple, unit)
//! and enums (unit, tuple and struct variants), with any number of
//! attributes/doc comments, which are skipped. Generic items produce a
//! compile error naming the limitation.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives `serde::Serialize` (value-tree encoder).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::Serialize)
}

/// Derives `serde::Deserialize` (value-tree decoder).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::Deserialize)
}

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    Serialize,
    Deserialize,
}

enum Shape {
    NamedStruct(Vec<String>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<(String, VariantShape)>),
}

enum VariantShape {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

fn expand(input: TokenStream, mode: Mode) -> TokenStream {
    let (name, shape) = match parse_item(input) {
        Ok(parsed) => parsed,
        Err(msg) => {
            return format!("compile_error!({msg:?});").parse().unwrap();
        }
    };
    let code = match mode {
        Mode::Serialize => gen_serialize(&name, &shape),
        Mode::Deserialize => gen_deserialize(&name, &shape),
    };
    code.parse().unwrap()
}

/// Parses the derive input into the type name and its field shape.
fn parse_item(input: TokenStream) -> Result<(String, Shape), String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs_and_vis(&tokens, &mut i);
    let keyword = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected struct/enum, got {other:?}")),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected type name, got {other:?}")),
    };
    i += 1;
    if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!(
            "serde stand-in derive does not support generic type `{name}`"
        ));
    }
    match keyword.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Ok((name, Shape::NamedStruct(parse_named_fields(g.stream())?)))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Ok((name, Shape::TupleStruct(count_tuple_fields(g.stream()))))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Ok((name, Shape::UnitStruct)),
            other => Err(format!("unsupported struct body: {other:?}")),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Ok((name, Shape::Enum(parse_variants(g.stream())?)))
            }
            other => Err(format!("unsupported enum body: {other:?}")),
        },
        other => Err(format!("expected struct or enum, got `{other}`")),
    }
}

/// Advances past outer attributes (`#[...]`) and visibility (`pub`,
/// `pub(...)`).
fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 2; // `#` + bracket group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    *i += 1;
                }
            }
            _ => return,
        }
    }
}

/// Parses `field: Type, ...` from a brace group, returning field names.
/// Types are skipped by scanning to the next comma at angle-bracket depth
/// zero (group tokens are atomic, so only `<`/`>` need tracking).
fn parse_named_fields(stream: TokenStream) -> Result<Vec<String>, String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let field = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => return Err(format!("expected field name, got {other:?}")),
        };
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => return Err(format!("expected `:` after field `{field}`, got {other:?}")),
        }
        skip_type(&tokens, &mut i);
        fields.push(field);
    }
    Ok(fields)
}

/// Skips type tokens up to and including the next top-level comma.
fn skip_type(tokens: &[TokenTree], i: &mut usize) {
    let mut angle_depth = 0i32;
    while *i < tokens.len() {
        match &tokens[*i] {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                *i += 1;
                return;
            }
            _ => {}
        }
        *i += 1;
    }
}

/// Counts fields of a tuple struct / tuple variant body.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut fields = 0;
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        skip_type(&tokens, &mut i);
        fields += 1;
    }
    fields
}

/// Parses enum variants: `Name`, `Name(T, ...)` or `Name { f: T, ... }`.
fn parse_variants(stream: TokenStream) -> Result<Vec<(String, VariantShape)>, String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => return Err(format!("expected variant name, got {other:?}")),
        };
        i += 1;
        let shape = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                VariantShape::Tuple(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                VariantShape::Named(parse_named_fields(g.stream())?)
            }
            _ => VariantShape::Unit,
        };
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '=') {
            return Err(format!(
                "discriminant on variant `{name}` is not supported by the serde stand-in"
            ));
        }
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
        variants.push((name, shape));
    }
    Ok(variants)
}

fn gen_serialize(name: &str, shape: &Shape) -> String {
    let body = match shape {
        Shape::NamedStruct(fields) => {
            let mut out = String::from("let mut __m = ::serde::Value::new_map();\n");
            for f in fields {
                out.push_str(&format!(
                    "__m.map_insert({f:?}, ::serde::Serialize::serialize(&self.{f}));\n"
                ));
            }
            out.push_str("__m");
            out
        }
        Shape::TupleStruct(1) => "::serde::Serialize::serialize(&self.0)".to_string(),
        Shape::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::serialize(&self.{i})"))
                .collect();
            format!("::serde::Value::Seq(vec![{}])", items.join(", "))
        }
        Shape::UnitStruct => "::serde::Value::Null".to_string(),
        Shape::Enum(variants) => {
            let mut arms = String::new();
            for (v, vs) in variants {
                match vs {
                    VariantShape::Unit => arms.push_str(&format!(
                        "{name}::{v} => ::serde::Value::Str({v:?}.to_string()),\n"
                    )),
                    VariantShape::Tuple(1) => arms.push_str(&format!(
                        "{name}::{v}(__f0) => ::serde::Value::variant({v:?}, \
                         ::serde::Serialize::serialize(__f0)),\n"
                    )),
                    VariantShape::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                        let items: Vec<String> = binds
                            .iter()
                            .map(|b| format!("::serde::Serialize::serialize({b})"))
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{v}({}) => ::serde::Value::variant({v:?}, \
                             ::serde::Value::Seq(vec![{}])),\n",
                            binds.join(", "),
                            items.join(", ")
                        ));
                    }
                    VariantShape::Named(fields) => {
                        let binds = fields.join(", ");
                        let mut inner =
                            String::from("let mut __m = ::serde::Value::new_map();\n");
                        for f in fields {
                            inner.push_str(&format!(
                                "__m.map_insert({f:?}, ::serde::Serialize::serialize({f}));\n"
                            ));
                        }
                        arms.push_str(&format!(
                            "{name}::{v} {{ {binds} }} => {{ {inner} \
                             ::serde::Value::variant({v:?}, __m) }}\n"
                        ));
                    }
                }
            }
            format!("match self {{\n{arms}}}")
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn serialize(&self) -> ::serde::Value {{\n{body}\n}}\n}}\n"
    )
}

fn gen_deserialize(name: &str, shape: &Shape) -> String {
    let body = match shape {
        Shape::NamedStruct(fields) => {
            let mut inits = String::new();
            for f in fields {
                inits.push_str(&format!(
                    "{f}: ::serde::Deserialize::deserialize(__v.map_get({f:?})?)?,\n"
                ));
            }
            format!("::std::result::Result::Ok({name} {{\n{inits}}})")
        }
        Shape::TupleStruct(1) => format!(
            "::std::result::Result::Ok({name}(::serde::Deserialize::deserialize(__v)?))"
        ),
        Shape::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::deserialize(&__items[{i}])?"))
                .collect();
            format!(
                "let __items = __v.as_seq_of({n})?;\n\
                 ::std::result::Result::Ok({name}({}))",
                items.join(", ")
            )
        }
        Shape::UnitStruct => format!("::std::result::Result::Ok({name})"),
        Shape::Enum(variants) => {
            let mut unit_arms = String::new();
            let mut data_arms = String::new();
            for (v, vs) in variants {
                match vs {
                    VariantShape::Unit => unit_arms.push_str(&format!(
                        "{v:?} => ::std::result::Result::Ok({name}::{v}),\n"
                    )),
                    VariantShape::Tuple(1) => data_arms.push_str(&format!(
                        "{v:?} => ::std::result::Result::Ok({name}::{v}(\
                         ::serde::Deserialize::deserialize(__payload)?)),\n"
                    )),
                    VariantShape::Tuple(n) => {
                        let items: Vec<String> = (0..*n)
                            .map(|i| format!("::serde::Deserialize::deserialize(&__items[{i}])?"))
                            .collect();
                        data_arms.push_str(&format!(
                            "{v:?} => {{ let __items = __payload.as_seq_of({n})?;\n\
                             ::std::result::Result::Ok({name}::{v}({})) }}\n",
                            items.join(", ")
                        ));
                    }
                    VariantShape::Named(fields) => {
                        let mut inits = String::new();
                        for f in fields {
                            inits.push_str(&format!(
                                "{f}: ::serde::Deserialize::deserialize(\
                                 __payload.map_get({f:?})?)?,\n"
                            ));
                        }
                        data_arms.push_str(&format!(
                            "{v:?} => ::std::result::Result::Ok({name}::{v} {{\n{inits}}}),\n"
                        ));
                    }
                }
            }
            format!(
                "match __v {{\n\
                 ::serde::Value::Str(__s) => match __s.as_str() {{\n\
                 {unit_arms}\
                 __other => ::std::result::Result::Err(\
                 ::serde::Error::unknown_variant(__other, {name:?})),\n\
                 }},\n\
                 ::serde::Value::Map(__entries) if __entries.len() == 1 => {{\n\
                 let (__tag, __payload) = &__entries[0];\n\
                 let _ = __payload;\n\
                 match __tag.as_str() {{\n\
                 {data_arms}\
                 __other => ::std::result::Result::Err(\
                 ::serde::Error::unknown_variant(__other, {name:?})),\n\
                 }}\n\
                 }},\n\
                 __other => ::std::result::Result::Err(\
                 ::serde::Error::expected(concat!(\"enum \", {name:?}), __other)),\n\
                 }}"
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
         fn deserialize(__v: &::serde::Value) \
         -> ::std::result::Result<Self, ::serde::Error> {{\n{body}\n}}\n}}\n"
    )
}

//! Offline stand-in for the `serde` crate.
//!
//! The build environment of this repository has no network access, so the
//! real serde cannot be fetched. This crate provides the subset of the
//! serde surface the workspace actually uses — the `Serialize` and
//! `Deserialize` traits, their derive macros, and impls for the standard
//! types appearing in workspace data structures — implemented over a
//! simple self-describing [`Value`] tree instead of serde's
//! serializer/deserializer visitor machinery.
//!
//! Design constraints honoured here:
//!
//! * **Deterministic output.** Maps preserve insertion order (derive
//!   emits fields in declaration order; `BTreeMap` iterates sorted), so
//!   serializing the same data twice yields byte-identical JSON — the
//!   property the campaign golden-report tests rely on.
//! * **Round-trip fidelity.** Every impl's `deserialize` accepts exactly
//!   what its `serialize` produces (plus numeric-from-string leniency for
//!   JSON map keys, which are always strings on the wire).

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::fmt;

/// A self-describing serialized value (the JSON data model).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Null / absent.
    Null,
    /// Boolean.
    Bool(bool),
    /// Unsigned integer.
    UInt(u64),
    /// Negative integer.
    Int(i64),
    /// Floating point.
    Float(f64),
    /// String.
    Str(String),
    /// Sequence.
    Seq(Vec<Value>),
    /// Ordered map (insertion order preserved).
    Map(Vec<(String, Value)>),
}

/// Shared null used when a map key is absent.
static NULL: Value = Value::Null;

impl Value {
    /// Creates an empty map value.
    pub fn new_map() -> Value {
        Value::Map(Vec::new())
    }

    /// Wraps a payload as a single-entry map `{variant: payload}` (the
    /// externally-tagged enum encoding).
    pub fn variant(name: &str, payload: Value) -> Value {
        Value::Map(vec![(name.to_string(), payload)])
    }

    /// Inserts `key` into a map value (replacing an existing entry).
    ///
    /// # Panics
    ///
    /// Panics if `self` is not a map.
    pub fn map_insert(&mut self, key: &str, value: Value) {
        match self {
            Value::Map(entries) => {
                if let Some(e) = entries.iter_mut().find(|(k, _)| k == key) {
                    e.1 = value;
                } else {
                    entries.push((key.to_string(), value));
                }
            }
            _ => panic!("map_insert on non-map value"),
        }
    }

    /// Looks up `key`; absent keys yield `&Value::Null` so `Option`
    /// fields deserialize as `None`.
    pub fn map_get(&self, key: &str) -> Result<&Value, Error> {
        match self {
            Value::Map(entries) => Ok(entries
                .iter()
                .find(|(k, _)| k == key)
                .map(|(_, v)| v)
                .unwrap_or(&NULL)),
            other => Err(Error::expected("map", other)),
        }
    }

    /// The entries of a map value.
    pub fn as_map(&self) -> Result<&[(String, Value)], Error> {
        match self {
            Value::Map(entries) => Ok(entries),
            other => Err(Error::expected("map", other)),
        }
    }

    /// The elements of a sequence value.
    pub fn as_seq(&self) -> Result<&[Value], Error> {
        match self {
            Value::Seq(items) => Ok(items),
            other => Err(Error::expected("sequence", other)),
        }
    }

    /// The elements of a sequence value of exactly `n` elements.
    pub fn as_seq_of(&self, n: usize) -> Result<&[Value], Error> {
        let items = self.as_seq()?;
        if items.len() != n {
            return Err(Error::new(format!(
                "expected sequence of {n} elements, got {}",
                items.len()
            )));
        }
        Ok(items)
    }

    /// Short tag of the value's kind, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::UInt(_) | Value::Int(_) => "integer",
            Value::Float(_) => "float",
            Value::Str(_) => "string",
            Value::Seq(_) => "sequence",
            Value::Map(_) => "map",
        }
    }

    /// Renders the value usable as a JSON map key (strings pass through,
    /// numbers and bools are stringified — serde_json semantics).
    pub fn into_key(self) -> Result<String, Error> {
        match self {
            Value::Str(s) => Ok(s),
            Value::UInt(n) => Ok(n.to_string()),
            Value::Int(n) => Ok(n.to_string()),
            Value::Bool(b) => Ok(b.to_string()),
            other => Err(Error::expected("key-compatible value", &other)),
        }
    }
}

/// Serialization / deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    /// Creates an error from a message.
    pub fn new(msg: impl Into<String>) -> Error {
        Error(msg.into())
    }

    /// Type-mismatch error.
    pub fn expected(what: &str, got: &Value) -> Error {
        Error(format!("expected {what}, got {}", got.kind()))
    }

    /// Unknown enum variant error.
    pub fn unknown_variant(variant: &str, ty: &str) -> Error {
        Error(format!("unknown variant `{variant}` for enum {ty}"))
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Types that can be rendered into a [`Value`] tree.
pub trait Serialize {
    /// Converts `self` into a value tree.
    fn serialize(&self) -> Value;
}

/// Types that can be reconstructed from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Reconstructs `Self` from a value tree.
    fn deserialize(value: &Value) -> Result<Self, Error>;
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}

impl Serialize for bool {
    fn serialize(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Bool(b) => Ok(*b),
            Value::Str(s) => s.parse().map_err(|_| Error::expected("bool", value)),
            other => Err(Error::expected("bool", other)),
        }
    }
}

macro_rules! impl_serde_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn deserialize(value: &Value) -> Result<Self, Error> {
                let wide: u64 = match value {
                    Value::UInt(n) => *n,
                    Value::Int(n) => u64::try_from(*n)
                        .map_err(|_| Error::expected("unsigned integer", value))?,
                    Value::Float(f) if f.fract() == 0.0 && *f >= 0.0 => *f as u64,
                    // JSON map keys are strings on the wire.
                    Value::Str(s) => s
                        .parse()
                        .map_err(|_| Error::expected("unsigned integer", value))?,
                    other => return Err(Error::expected("unsigned integer", other)),
                };
                <$t>::try_from(wide).map_err(|_| Error::new(concat!("integer out of range for ", stringify!($t))))
            }
        }
    )*};
}
impl_serde_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_serde_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                let v = *self as i64;
                if v >= 0 { Value::UInt(v as u64) } else { Value::Int(v) }
            }
        }
        impl Deserialize for $t {
            fn deserialize(value: &Value) -> Result<Self, Error> {
                let wide: i64 = match value {
                    Value::UInt(n) => i64::try_from(*n)
                        .map_err(|_| Error::expected("integer", value))?,
                    Value::Int(n) => *n,
                    Value::Float(f) if f.fract() == 0.0 => *f as i64,
                    Value::Str(s) => s
                        .parse()
                        .map_err(|_| Error::expected("integer", value))?,
                    other => return Err(Error::expected("integer", other)),
                };
                <$t>::try_from(wide).map_err(|_| Error::new(concat!("integer out of range for ", stringify!($t))))
            }
        }
    )*};
}
impl_serde_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn serialize(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Float(f) => Ok(*f),
            Value::UInt(n) => Ok(*n as f64),
            Value::Int(n) => Ok(*n as f64),
            Value::Str(s) => s.parse().map_err(|_| Error::expected("float", value)),
            other => Err(Error::expected("float", other)),
        }
    }
}

impl Serialize for f32 {
    fn serialize(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        f64::deserialize(value).map(|f| f as f32)
    }
}

impl Serialize for String {
    fn serialize(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error::expected("string", other)),
        }
    }
}

impl Serialize for str {
    fn serialize(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for &'static str {
    /// Real serde deserializes `&'de str` zero-copy from the input; this
    /// owned-tree stub cannot borrow, so it leaks the (small) string to get
    /// a `'static` lifetime. Only used by config types in tests.
    fn deserialize(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Str(s) => Ok(Box::leak(s.clone().into_boxed_str())),
            other => Err(Error::expected("string", other)),
        }
    }
}

impl Serialize for char {
    fn serialize(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => Err(Error::expected("single-char string", other)),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize(&self) -> Value {
        match self {
            Some(v) => v.serialize(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => T::deserialize(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        T::deserialize(value).map(Box::new)
    }
}

impl Serialize for std::sync::Arc<str> {
    fn serialize(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for std::sync::Arc<str> {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Str(s) => Ok(std::sync::Arc::from(s.as_str())),
            other => Err(Error::expected("string", other)),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        value.as_seq()?.iter().map(T::deserialize).collect()
    }
}

impl<T: Serialize> Serialize for VecDeque<T> {
    fn serialize(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Deserialize> Deserialize for VecDeque<T> {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        value.as_seq()?.iter().map(T::deserialize).collect()
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Deserialize + fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        let items: Vec<T> = value
            .as_seq_of(N)?
            .iter()
            .map(T::deserialize)
            .collect::<Result<_, _>>()?;
        Ok(items.try_into().expect("length checked"))
    }
}

impl<T: Serialize + Ord> Serialize for BTreeSet<T> {
    fn serialize(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Deserialize + Ord> Deserialize for BTreeSet<T> {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        value.as_seq()?.iter().map(T::deserialize).collect()
    }
}

impl<K: Serialize + Ord, V: Serialize> Serialize for BTreeMap<K, V> {
    fn serialize(&self) -> Value {
        let mut entries = Vec::with_capacity(self.len());
        for (k, v) in self {
            let key = k
                .serialize()
                .into_key()
                .expect("map key must serialize to a string or number");
            entries.push((key, v.serialize()));
        }
        Value::Map(entries)
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        let mut map = BTreeMap::new();
        for (k, v) in value.as_map()? {
            map.insert(
                K::deserialize(&Value::Str(k.clone()))?,
                V::deserialize(v)?,
            );
        }
        Ok(map)
    }
}

macro_rules! impl_serde_tuple {
    ($(($($n:tt $t:ident),+);)*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn serialize(&self) -> Value {
                Value::Seq(vec![$(self.$n.serialize()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn deserialize(value: &Value) -> Result<Self, Error> {
                const N: usize = 0 $(+ { let _ = $n; 1 })+;
                let items = value.as_seq_of(N)?;
                Ok(($($t::deserialize(&items[$n])?,)+))
            }
        }
    )*};
}
impl_serde_tuple! {
    (0 A);
    (0 A, 1 B);
    (0 A, 1 B, 2 C);
    (0 A, 1 B, 2 C, 3 D);
}

impl Serialize for Value {
    fn serialize(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        Ok(value.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_insert_replaces_existing_keys() {
        let mut m = Value::new_map();
        m.map_insert("a", Value::UInt(1));
        m.map_insert("a", Value::UInt(2));
        assert_eq!(m.map_get("a").unwrap(), &Value::UInt(2));
        assert_eq!(m.map_get("missing").unwrap(), &Value::Null);
    }

    #[test]
    fn numeric_keys_round_trip_through_strings() {
        let mut m = BTreeMap::new();
        m.insert(7u32, "x".to_string());
        let v = m.serialize();
        let back: BTreeMap<u32, String> = Deserialize::deserialize(&v).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn option_absent_field_is_none() {
        let m = Value::new_map();
        let got: Option<u32> = Deserialize::deserialize(m.map_get("gone").unwrap()).unwrap();
        assert_eq!(got, None);
    }

    #[test]
    fn tuples_round_trip() {
        let t = ("speed".to_string(), 19.4f64);
        let back: (String, f64) = Deserialize::deserialize(&t.serialize()).unwrap();
        assert_eq!(back, t);
    }
}

//! Offline stand-in for the `parking_lot` crate: [`Mutex`] and [`RwLock`]
//! with parking_lot's non-poisoning `lock()`/`read()`/`write()` signatures,
//! implemented over the std primitives.

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock whose `lock` never returns a poison error.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Wraps `value` in a new mutex.
    pub fn new(value: T) -> Mutex<T> {
        Mutex(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(guard) => Some(guard),
            Err(sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (exclusive borrow proves uniqueness).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A reader-writer lock whose accessors never return poison errors.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Wraps `value` in a new lock.
    pub fn new(value: T) -> RwLock<T> {
        RwLock(sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Attempts shared read access without blocking.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.0.try_read() {
            Ok(guard) => Some(guard),
            Err(sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Attempts exclusive write access without blocking.
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.0.try_write() {
            Ok(guard) => Some(guard),
            Err(sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (exclusive borrow proves uniqueness).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_guards_shared_counter() {
        let m = Mutex::new(0u32);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..100 {
                        *m.lock() += 1;
                    }
                });
            }
        });
        assert_eq!(m.into_inner(), 400);
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(vec![1, 2]);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
        assert!(l.try_write().is_some());
    }
}

//! Offline stand-in for the `criterion` crate.
//!
//! Implements the small API surface the workspace benches use —
//! [`Criterion::bench_function`], benchmark groups, `iter`/`iter_batched*`
//! and the `criterion_group!`/`criterion_main!` macros — with a simple
//! fixed-iteration wall-clock timer instead of criterion's statistical
//! analysis. Good enough to keep the benches compiling and producing
//! comparable ns/iter numbers offline.

use std::time::Instant;

/// How batched setup output is sized (accepted for API compatibility).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// Opaque measurement driver passed to benchmark closures.
pub struct Bencher {
    iterations: u64,
    elapsed_ns: u128,
}

impl Bencher {
    fn new(iterations: u64) -> Bencher {
        Bencher {
            iterations,
            elapsed_ns: 0,
        }
    }

    /// Times `routine` over the configured iteration count.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        let start = Instant::now();
        for _ in 0..self.iterations {
            std::hint::black_box(routine());
        }
        self.elapsed_ns = start.elapsed().as_nanos();
    }

    /// Times `routine` over fresh inputs built by `setup` (setup excluded
    /// from the measurement).
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        let mut total = 0u128;
        for _ in 0..self.iterations {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            total += start.elapsed().as_nanos();
        }
        self.elapsed_ns = total;
    }

    /// Like [`Bencher::iter_batched`] but passes the input by `&mut`.
    pub fn iter_batched_ref<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(&mut I) -> O,
        _size: BatchSize,
    ) {
        let mut total = 0u128;
        for _ in 0..self.iterations {
            let mut input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(&mut input));
            total += start.elapsed().as_nanos();
        }
        self.elapsed_ns = total;
    }
}

/// Benchmark harness entry point.
pub struct Criterion {
    sample_size: u64,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 100 }
    }
}

impl Criterion {
    /// Sets the iteration count per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n as u64;
        self
    }

    /// Runs one named benchmark.
    pub fn bench_function(
        &mut self,
        name: &str,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Criterion {
        run_one(name, self.sample_size, f);
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            parent: self,
            name: name.to_string(),
        }
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    parent: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark inside the group.
    pub fn bench_function(
        &mut self,
        name: &str,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        run_one(&format!("{}/{name}", self.name), self.parent.sample_size, f);
        self
    }

    /// Closes the group (accepted for API compatibility).
    pub fn finish(self) {}
}

fn run_one(name: &str, iterations: u64, mut f: impl FnMut(&mut Bencher)) {
    let mut b = Bencher::new(iterations.max(1));
    f(&mut b);
    let per_iter = b.elapsed_ns / u128::from(b.iterations.max(1));
    println!("bench {name:<40} {per_iter:>12} ns/iter ({} iters)", b.iterations);
}

/// Re-export for benches that use `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Declares a benchmark group function, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $cfg;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the benchmark `main` running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bench_demo(c: &mut Criterion) {
        c.bench_function("demo_direct", |b| b.iter(|| 1 + 1));
        let mut group = c.benchmark_group("demo");
        group.bench_function("batched", |b| {
            b.iter_batched(|| vec![1, 2, 3], |v| v.len(), BatchSize::SmallInput)
        });
        group.bench_function("batched_ref", |b| {
            b.iter_batched_ref(|| vec![1, 2, 3], |v| v.pop(), BatchSize::SmallInput)
        });
        group.finish();
    }

    criterion_group! {
        name = benches;
        config = Criterion::default().sample_size(5);
        targets = bench_demo
    }

    #[test]
    fn harness_runs() {
        benches();
    }
}
